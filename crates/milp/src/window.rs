//! Exact solver for one window of the iterative `lp.k` heuristic.
//!
//! The paper solves the MILP on a small subset of tasks (k = 3..6) at a
//! time, freezing the events of tasks that started before the window
//! boundary. Here the same role is played by a branch-and-bound over the
//! orderings of the window, warm-started from the *runtime state* (link and
//! processor availability, memory still held by earlier tasks) left by the
//! previous windows. For the window sizes the paper uses, enumerating
//! orderings is exact over permutation schedules and takes microseconds.

use dts_core::prelude::*;

/// Runtime state carried across windows: availability of both resources and
/// the memory still held by tasks scheduled in previous windows.
#[derive(Debug, Clone, Default)]
pub struct WindowState {
    /// Instant at which the communication link becomes free.
    pub link_free: Time,
    /// Instant at which the processing unit becomes free.
    pub cpu_free: Time,
    /// Releases pending from previous windows: `(computation end, memory)`.
    pub pending_releases: Vec<(Time, MemSize)>,
}

impl WindowState {
    /// Memory still held at instant `t`.
    pub fn held_at(&self, t: Time) -> MemSize {
        self.pending_releases
            .iter()
            .filter(|(end, _)| *end > t)
            .map(|(_, m)| *m)
            .sum()
    }
}

/// Result of scheduling one window.
#[derive(Debug, Clone)]
pub struct WindowSolution {
    /// Entries for the window's tasks (global task ids).
    pub entries: Vec<ScheduleEntry>,
    /// State after the window, to warm-start the next one.
    pub state: WindowState,
}

/// Simulates the execution of `order` (tasks of the window, same order on
/// both resources) starting from `state`. Returns the produced entries and
/// the resulting state.
pub fn simulate_window(
    instance: &Instance,
    state: &WindowState,
    order: &[TaskId],
) -> (Vec<ScheduleEntry>, WindowState) {
    let capacity = instance.capacity();
    let mut link_free = state.link_free;
    let mut cpu_free = state.cpu_free;
    let mut active: Vec<(Time, MemSize)> = state.pending_releases.clone();
    active.sort();
    let mut entries = Vec::with_capacity(order.len());

    for &id in order {
        let task = instance.task(id);
        let mut start = link_free;
        // Wait for enough memory, stepping through release instants.
        loop {
            let held: MemSize = active
                .iter()
                .filter(|(end, _)| *end > start)
                .map(|(_, m)| *m)
                .sum();
            if held.saturating_add(task.mem) <= capacity {
                break;
            }
            let next_release = active
                .iter()
                .map(|(end, _)| *end)
                .filter(|end| *end > start)
                .min()
                .expect("memory exceeded but nothing to release: task larger than capacity");
            start = next_release;
        }
        let comm_start = start;
        let comm_end = comm_start + task.comm_time;
        let comp_start = comm_end.max(cpu_free);
        let comp_end = comp_start + task.comp_time;
        link_free = comm_end;
        cpu_free = comp_end;
        active.push((comp_end, task.mem));
        entries.push(ScheduleEntry {
            task: id,
            comm_start,
            comp_start,
        });
    }

    // Releases still pending after the window (computations that end after
    // the link becomes free are the only ones that can constrain the future).
    let state_after = WindowState {
        link_free,
        cpu_free,
        pending_releases: active
            .into_iter()
            .filter(|(end, _)| *end > link_free)
            .collect(),
    };
    (entries, state_after)
}

/// Window size at or above which [`solve_window`] fans the permutation
/// enumeration out across threads. Below it (in particular for the paper's
/// `k = 3..6`), the enumeration takes microseconds and thread spawning would
/// dominate; at 7–8 tasks each first-task prefix carries 720–5040
/// simulations, enough to amortize a scoped thread.
pub const PARALLEL_WINDOW_MIN_TASKS: usize = 7;

/// The best ordering found so far, with its comparison key.
type BestOrder = (Time, Time, Vec<ScheduleEntry>, WindowState);

/// Finds the best ordering of the window tasks by exhaustive enumeration
/// (exact for the small windows used by `lp.k`). "Best" minimizes the
/// completion time of the window's computations, breaking ties by the link
/// completion time (earlier transfers leave more slack for the next window),
/// then by enumeration order (first permutation found wins).
///
/// Windows of at least [`PARALLEL_WINDOW_MIN_TASKS`] tasks are enumerated in
/// parallel ([`solve_window_parallel`]) when the machine has more than one
/// core, smaller ones (and single-core hosts) sequentially
/// ([`solve_window_sequential`]); both return the same solution.
pub fn solve_window(instance: &Instance, state: &WindowState, window: &[TaskId]) -> WindowSolution {
    // Check the window size first: the paper's k = 3..6 windows always run
    // sequentially, and querying the core count is a syscall that would
    // otherwise be paid once per window across an entire `lp.k` run.
    if window.len() >= PARALLEL_WINDOW_MIN_TASKS
        && std::thread::available_parallelism().map_or(1, |n| n.get()) > 1
    {
        solve_window_parallel(instance, state, window)
    } else {
        solve_window_sequential(instance, state, window)
    }
}

/// Single-threaded permutation enumeration. Kept public as the reference
/// implementation the parallel solver is pinned against.
pub fn solve_window_sequential(
    instance: &Instance,
    state: &WindowState,
    window: &[TaskId],
) -> WindowSolution {
    assert_window_enumerable(window);
    let mut best: Option<BestOrder> = None;
    let mut order: Vec<TaskId> = window.to_vec();
    permute(&mut order, 0, &mut |candidate| {
        consider(instance, state, candidate, &mut best);
    });
    let (_, _, entries, state) = best.expect("window is non-empty");
    WindowSolution { entries, state }
}

/// Parallel permutation enumeration: each first-task prefix of the window is
/// enumerated on its own scoped thread, reproducing the sequential
/// enumeration order inside the prefix; the per-prefix winners are then
/// combined in prefix order under the same strict "better-than" rule, so the
/// overall winner is the one [`solve_window_sequential`] would return —
/// including which of several key-tied orderings is kept.
pub fn solve_window_parallel(
    instance: &Instance,
    state: &WindowState,
    window: &[TaskId],
) -> WindowSolution {
    assert_window_enumerable(window);
    if window.len() <= 1 {
        return solve_window_sequential(instance, state, window);
    }
    let threads = window
        .len()
        .min(std::thread::available_parallelism().map_or(1, |n| n.get()));
    let per_prefix = dts_core::pool::run_indexed_pool(window.len(), threads, |first| {
        let mut order: Vec<TaskId> = window.to_vec();
        order.swap(0, first);
        let mut best: Option<BestOrder> = None;
        permute(&mut order, 1, &mut |candidate| {
            consider(instance, state, candidate, &mut best);
        });
        Ok(best.expect("window is non-empty"))
    })
    // The jobs are infallible; only a panicked simulation (an oversized
    // task that bypassed validation) lands here, and that panics the
    // sequential solver too.
    .unwrap_or_else(|e| panic!("window enumeration failed: {e}"));
    let mut best: Option<BestOrder> = None;
    for prefix_best in per_prefix {
        if improves((prefix_best.0, prefix_best.1), &best) {
            best = Some(prefix_best);
        }
    }
    let (_, _, entries, state) = best.expect("window is non-empty");
    WindowSolution { entries, state }
}

/// The strict "better-than" rule both solvers share: a candidate replaces
/// the incumbent only when its key is strictly smaller, so among key-tied
/// orderings the first one considered wins. The sequential enumeration and
/// the prefix-ordered parallel merge both rely on this exact rule to return
/// identical solutions.
#[inline]
fn improves(key: (Time, Time), best: &Option<BestOrder>) -> bool {
    best.as_ref()
        .is_none_or(|(cpu, link, _, _)| key < (*cpu, *link))
}

fn assert_window_enumerable(window: &[TaskId]) {
    assert!(
        window.len() <= 8,
        "window enumeration is factorial; refusing windows larger than 8 tasks"
    );
}

/// Simulates `candidate` and keeps it iff strictly better than `best` —
/// ties keep the earlier enumeration, which both solvers rely on for
/// identical results.
fn consider(
    instance: &Instance,
    state: &WindowState,
    candidate: &[TaskId],
    best: &mut Option<BestOrder>,
) {
    let (entries, after) = simulate_window(instance, state, candidate);
    if improves((after.cpu_free, after.link_free), best) {
        *best = Some((after.cpu_free, after.link_free, entries, after));
    }
}

fn permute<F: FnMut(&[TaskId])>(order: &mut Vec<TaskId>, k: usize, f: &mut F) {
    if k == order.len() {
        f(order);
        return;
    }
    for i in k..order.len() {
        order.swap(k, i);
        permute(order, k + 1, f);
        order.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::instances::table3;
    use dts_core::simulate::simulate_sequence;

    #[test]
    fn window_simulation_matches_sequence_executor_from_scratch() {
        let inst = table3();
        let order = inst.task_ids();
        let (entries, after) = simulate_window(&inst, &WindowState::default(), &order);
        let reference = simulate_sequence(&inst, &order).unwrap();
        assert_eq!(entries, reference.entries());
        assert_eq!(after.cpu_free, reference.makespan(&inst));
    }

    #[test]
    fn warm_started_window_respects_prior_memory() {
        // Table 3 (capacity 6). Pretend a previous window left 5 bytes
        // held until t = 10 and the link free at t = 4.
        let inst = table3();
        let state = WindowState {
            link_free: Time::units_int(4),
            cpu_free: Time::units_int(10),
            pending_releases: vec![(Time::units_int(10), MemSize::from_bytes(5))],
        };
        // Task C (mem 4) cannot start before t = 10.
        let (entries, _) = simulate_window(&inst, &state, &[TaskId(2)]);
        assert_eq!(entries[0].comm_start, Time::units_int(10));
        // Task B (mem 1) fits immediately at t = 4.
        let (entries, _) = simulate_window(&inst, &state, &[TaskId(1)]);
        assert_eq!(entries[0].comm_start, Time::units_int(4));
    }

    #[test]
    fn solve_window_finds_the_best_order() {
        let inst = table3();
        let window = inst.task_ids();
        let solution = solve_window(&inst, &WindowState::default(), &window);
        // Exhaustive over the same executor: must be at least as good as any
        // fixed order.
        for order in [
            vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)],
            vec![TaskId(1), TaskId(2), TaskId(0), TaskId(3)],
            vec![TaskId(2), TaskId(1), TaskId(0), TaskId(3)],
        ] {
            let reference = simulate_sequence(&inst, &order).unwrap();
            assert!(solution.state.cpu_free <= reference.makespan(&inst));
        }
        assert_eq!(solution.entries.len(), 4);
    }

    #[test]
    #[should_panic(expected = "refusing windows larger")]
    fn oversized_window_rejected() {
        let inst = table3();
        let window: Vec<TaskId> = (0..9).map(TaskId).collect();
        let _ = solve_window(&inst, &WindowState::default(), &window);
    }
}
