//! Exact solver for one window of the iterative `lp.k` heuristic.
//!
//! The paper solves the MILP on a small subset of tasks (k = 3..6) at a
//! time, freezing the events of tasks that started before the window
//! boundary. Here the same role is played by a branch-and-bound over the
//! orderings of the window, warm-started from the *runtime state* (link and
//! processor availability, memory still held by earlier tasks) left by the
//! previous windows. For the window sizes the paper uses, enumerating
//! orderings is exact over permutation schedules and takes microseconds.

use dts_core::prelude::*;

/// Runtime state carried across windows: availability of both resources and
/// the memory still held by tasks scheduled in previous windows.
#[derive(Debug, Clone, Default)]
pub struct WindowState {
    /// Instant at which the communication link becomes free.
    pub link_free: Time,
    /// Instant at which the processing unit becomes free.
    pub cpu_free: Time,
    /// Releases pending from previous windows: `(computation end, memory)`.
    pub pending_releases: Vec<(Time, MemSize)>,
}

impl WindowState {
    /// Memory still held at instant `t`.
    pub fn held_at(&self, t: Time) -> MemSize {
        self.pending_releases
            .iter()
            .filter(|(end, _)| *end > t)
            .map(|(_, m)| *m)
            .sum()
    }
}

/// Result of scheduling one window.
#[derive(Debug, Clone)]
pub struct WindowSolution {
    /// Entries for the window's tasks (global task ids).
    pub entries: Vec<ScheduleEntry>,
    /// State after the window, to warm-start the next one.
    pub state: WindowState,
}

/// Simulates the execution of `order` (tasks of the window, same order on
/// both resources) starting from `state`. Returns the produced entries and
/// the resulting state.
pub fn simulate_window(
    instance: &Instance,
    state: &WindowState,
    order: &[TaskId],
) -> (Vec<ScheduleEntry>, WindowState) {
    let capacity = instance.capacity();
    let mut link_free = state.link_free;
    let mut cpu_free = state.cpu_free;
    let mut active: Vec<(Time, MemSize)> = state.pending_releases.clone();
    active.sort();
    let mut entries = Vec::with_capacity(order.len());

    for &id in order {
        let task = instance.task(id);
        let mut start = link_free;
        // Wait for enough memory, stepping through release instants.
        loop {
            let held: MemSize = active
                .iter()
                .filter(|(end, _)| *end > start)
                .map(|(_, m)| *m)
                .sum();
            if held.saturating_add(task.mem) <= capacity {
                break;
            }
            let next_release = active
                .iter()
                .map(|(end, _)| *end)
                .filter(|end| *end > start)
                .min()
                .expect("memory exceeded but nothing to release: task larger than capacity");
            start = next_release;
        }
        let comm_start = start;
        let comm_end = comm_start + task.comm_time;
        let comp_start = comm_end.max(cpu_free);
        let comp_end = comp_start + task.comp_time;
        link_free = comm_end;
        cpu_free = comp_end;
        active.push((comp_end, task.mem));
        entries.push(ScheduleEntry {
            task: id,
            comm_start,
            comp_start,
        });
    }

    // Releases still pending after the window (computations that end after
    // the link becomes free are the only ones that can constrain the future).
    let state_after = WindowState {
        link_free,
        cpu_free,
        pending_releases: active
            .into_iter()
            .filter(|(end, _)| *end > link_free)
            .collect(),
    };
    (entries, state_after)
}

/// Finds the best ordering of the window tasks by exhaustive enumeration
/// (exact for the small windows used by `lp.k`). "Best" minimizes the
/// completion time of the window's computations, breaking ties by the link
/// completion time (earlier transfers leave more slack for the next window).
pub fn solve_window(instance: &Instance, state: &WindowState, window: &[TaskId]) -> WindowSolution {
    assert!(
        window.len() <= 8,
        "window enumeration is factorial; refusing windows larger than 8 tasks"
    );
    let mut best: Option<(Time, Time, Vec<ScheduleEntry>, WindowState)> = None;
    let mut order: Vec<TaskId> = window.to_vec();
    permute(&mut order, 0, &mut |candidate| {
        let (entries, after) = simulate_window(instance, state, candidate);
        let key = (after.cpu_free, after.link_free);
        if best
            .as_ref()
            .is_none_or(|(cpu, link, _, _)| key < (*cpu, *link))
        {
            best = Some((after.cpu_free, after.link_free, entries, after));
        }
    });
    let (_, _, entries, state) = best.expect("window is non-empty");
    WindowSolution { entries, state }
}

fn permute<F: FnMut(&[TaskId])>(order: &mut Vec<TaskId>, k: usize, f: &mut F) {
    if k == order.len() {
        f(order);
        return;
    }
    for i in k..order.len() {
        order.swap(k, i);
        permute(order, k + 1, f);
        order.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::instances::table3;
    use dts_core::simulate::simulate_sequence;

    #[test]
    fn window_simulation_matches_sequence_executor_from_scratch() {
        let inst = table3();
        let order = inst.task_ids();
        let (entries, after) = simulate_window(&inst, &WindowState::default(), &order);
        let reference = simulate_sequence(&inst, &order).unwrap();
        assert_eq!(entries, reference.entries());
        assert_eq!(after.cpu_free, reference.makespan(&inst));
    }

    #[test]
    fn warm_started_window_respects_prior_memory() {
        // Table 3 (capacity 6). Pretend a previous window left 5 bytes
        // held until t = 10 and the link free at t = 4.
        let inst = table3();
        let state = WindowState {
            link_free: Time::units_int(4),
            cpu_free: Time::units_int(10),
            pending_releases: vec![(Time::units_int(10), MemSize::from_bytes(5))],
        };
        // Task C (mem 4) cannot start before t = 10.
        let (entries, _) = simulate_window(&inst, &state, &[TaskId(2)]);
        assert_eq!(entries[0].comm_start, Time::units_int(10));
        // Task B (mem 1) fits immediately at t = 4.
        let (entries, _) = simulate_window(&inst, &state, &[TaskId(1)]);
        assert_eq!(entries[0].comm_start, Time::units_int(4));
    }

    #[test]
    fn solve_window_finds_the_best_order() {
        let inst = table3();
        let window = inst.task_ids();
        let solution = solve_window(&inst, &WindowState::default(), &window);
        // Exhaustive over the same executor: must be at least as good as any
        // fixed order.
        for order in [
            vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)],
            vec![TaskId(1), TaskId(2), TaskId(0), TaskId(3)],
            vec![TaskId(2), TaskId(1), TaskId(0), TaskId(3)],
        ] {
            let reference = simulate_sequence(&inst, &order).unwrap();
            assert!(solution.state.cpu_free <= reference.makespan(&inst));
        }
        assert_eq!(solution.entries.len(), 4);
    }

    #[test]
    #[should_panic(expected = "refusing windows larger")]
    fn oversized_window_rejected() {
        let inst = table3();
        let window: Vec<TaskId> = (0..9).map(TaskId).collect();
        let _ = solve_window(&inst, &WindowState::default(), &window);
    }
}
