//! # dts-milp
//!
//! The mixed-integer linear-programming view of the data-transfer problem
//! (Section 4.5 of the paper) and the iterative `lp.k` heuristic built on it.
//!
//! The paper formulates problem `DT` with, for every ordered pair of tasks
//! `(i, j)`, booleans `a_ij` (communication order), `b_ij` (computation
//! order) and `c_ij` (whether `i`'s transfer starts after `j`'s computation
//! ends), plus continuous start times. GLPK could not solve the full MILP at
//! the scale of interest, so the paper solves it *iteratively* on windows of
//! `k = 3..6` tasks, freezing already-started events at each window
//! boundary.
//!
//! This crate reproduces that pipeline without an external solver:
//!
//! * [`formulation`] encodes the MILP symbolically (variables, constraints)
//!   and can check a concrete schedule against it — the executable
//!   counterpart of the paper's formulation;
//! * [`window`] contains the exact window solver (branch-and-bound over the
//!   orderings of a window, warm-started from the state left by previous
//!   windows), which plays the role GLPK played in the paper;
//! * [`iterative`] assembles the `lp.k` heuristic: split the submission
//!   order into windows of `k` tasks, solve each window exactly, concatenate.
//!
//! The substitution (branch-and-bound instead of GLPK) is documented in
//! `DESIGN.md`; for the window sizes used by the paper (≤ 6 tasks) the
//! solver is exact over permutation schedules, which is all that matters for
//! reproducing Fig. 7.

#![warn(missing_docs)]

pub mod formulation;
pub mod iterative;
pub mod window;

pub use formulation::MilpFormulation;
pub use iterative::{lp_k, lp_k_sweep, lp_k_sweep_sizes, LpKConfig, PARALLEL_SWEEP_MIN_TASKS};
