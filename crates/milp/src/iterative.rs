//! The iterative `lp.k` heuristic (Section 4.5 of the paper).
//!
//! The submission order is split into consecutive windows of `k` tasks
//! ("the subsets are formed in the order in which tasks are submitted, which
//! is arbitrary"); each window is solved exactly, warm-started from the
//! runtime state left by the previous windows (the counterpart of the paper
//! fixing the events of tasks that started before the window boundary).

use crate::window::{solve_window, WindowState};
use dts_core::pool::run_indexed_pool;
use dts_core::prelude::*;

/// Configuration of the `lp.k` heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpKConfig {
    /// Window size `k`. The paper evaluates `k = 3, 4, 5, 6`.
    pub window: usize,
}

impl LpKConfig {
    /// The window sizes evaluated in Fig. 7 of the paper.
    pub const PAPER_WINDOW_SIZES: [usize; 4] = [3, 4, 5, 6];
}

impl Default for LpKConfig {
    fn default() -> Self {
        LpKConfig { window: 4 }
    }
}

/// Runs `lp.k`: windows of `config.window` tasks in submission order, each
/// solved exactly and concatenated.
///
/// ```
/// use dts_core::instances::table3;
/// use dts_milp::{lp_k, LpKConfig};
///
/// let instance = table3();
/// let schedule = lp_k(&instance, LpKConfig { window: 4 }).unwrap();
/// assert_eq!(schedule.len(), instance.len());
/// assert!(dts_core::feasibility::is_feasible(&instance, &schedule));
/// ```
pub fn lp_k(instance: &Instance, config: LpKConfig) -> Result<Schedule> {
    if config.window == 0 {
        return Err(CoreError::Infeasible("lp.k window must be positive".into()));
    }
    if config.window > 8 {
        return Err(CoreError::Infeasible(format!(
            "lp.k window of {} is too large for exact enumeration (max 8)",
            config.window
        )));
    }
    // An oversized task (possible only for deserialized instances) would
    // drain the window simulator's release queue and panic.
    instance.check_tasks_fit()?;
    let ids = instance.task_ids();
    let mut state = WindowState::default();
    let mut schedule = Schedule::with_capacity(instance.len());
    for window in ids.chunks(config.window) {
        let solution = solve_window(instance, &state, window);
        for entry in solution.entries {
            schedule.push(entry);
        }
        state = solution.state;
    }
    Ok(schedule)
}

/// Instance size at or above which [`lp_k_sweep`] solves its window sizes on
/// separate threads. The window sizes are independent solves over the same
/// instance, so they parallelize perfectly; below this many tasks a whole
/// sweep takes well under the cost of spawning threads.
pub const PARALLEL_SWEEP_MIN_TASKS: usize = 16;

/// Convenience: runs `lp.k` for every window size of Fig. 7 and returns the
/// `(k, makespan)` pairs, in the order of
/// [`LpKConfig::PAPER_WINDOW_SIZES`].
///
/// ```
/// use dts_core::instances::table3;
/// let sweep = dts_milp::lp_k_sweep(&table3()).unwrap();
/// assert_eq!(sweep.len(), 4);
/// assert_eq!(sweep[0].0, 3); // lp.3 first
/// ```
pub fn lp_k_sweep(instance: &Instance) -> Result<Vec<(usize, Time)>> {
    lp_k_sweep_sizes(instance, &LpKConfig::PAPER_WINDOW_SIZES)
}

/// [`lp_k_sweep`] over arbitrary window sizes. Each window size is an
/// independent `lp.k` solve, so on instances of at least
/// [`PARALLEL_SWEEP_MIN_TASKS`] tasks the sizes are solved on scoped
/// threads; results (and the reported error, if any: the one for the
/// earliest failing size) are identical to solving the sizes one by one.
pub fn lp_k_sweep_sizes(instance: &Instance, sizes: &[usize]) -> Result<Vec<(usize, Time)>> {
    let threads = if instance.len() < PARALLEL_SWEEP_MIN_TASKS {
        1
    } else {
        // One worker per size, but never more than the machine offers —
        // `sizes` is caller-controlled and may be long.
        sizes
            .len()
            .min(std::thread::available_parallelism().map_or(1, |n| n.get()))
    };
    run_indexed_pool(sizes.len(), threads, |index| {
        let k = sizes[index];
        let schedule = lp_k(instance, LpKConfig { window: k })?;
        Ok((k, schedule.makespan(instance)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::feasibility::is_feasible;
    use dts_core::instances::{random_instance_decoupled_memory, table3, table5};
    use dts_flowshop::johnson::johnson_makespan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oversized_task_returns_error_instead_of_panicking() {
        // Construction rejects oversized tasks, but a deserialized instance
        // bypasses it; the window simulator would otherwise drain its
        // release queue and panic.
        let json = r#"{
            "tasks": [
                {"name": "ok", "comm_time": 1000, "comp_time": 1000, "mem": 2},
                {"name": "huge", "comm_time": 2000, "comp_time": 1000, "mem": 9}
            ],
            "capacity": 4,
            "label": "malformed"
        }"#;
        let inst: Instance = serde_json::from_str(json).unwrap();
        let err = lp_k(&inst, LpKConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            CoreError::TaskExceedsCapacity {
                task: dts_core::TaskId(1),
                ..
            }
        ));
    }

    #[test]
    fn lp_k_produces_feasible_complete_schedules() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let inst = random_instance_decoupled_memory(&mut rng, 17, 1.3);
            for k in LpKConfig::PAPER_WINDOW_SIZES {
                let sched = lp_k(&inst, LpKConfig { window: k }).unwrap();
                assert_eq!(sched.len(), inst.len());
                assert!(is_feasible(&inst, &sched), "lp.{k}");
                assert!(sched.makespan(&inst) >= johnson_makespan(&inst));
            }
        }
    }

    #[test]
    fn window_covering_the_whole_instance_is_exact_over_permutations() {
        // With a single window of size >= n, lp.k is the exact permutation
        // optimum of the (small) instance.
        let inst = table3();
        let sched = lp_k(&inst, LpKConfig { window: 6 }).unwrap();
        let exact = dts_flowshop::exact::optimal_same_order(&inst);
        assert_eq!(sched.makespan(&inst), exact.makespan);
    }

    #[test]
    fn larger_windows_do_not_hurt_on_paper_instances() {
        for inst in [table3(), table5()] {
            let sweep = lp_k_sweep(&inst).unwrap();
            assert_eq!(sweep.len(), 4);
            let m3 = sweep[0].1;
            let m6 = sweep[3].1;
            assert!(
                m6 <= m3,
                "{}: lp.6 should not be worse than lp.3",
                inst.label
            );
        }
    }

    #[test]
    fn invalid_window_sizes_rejected() {
        let inst = table3();
        assert!(lp_k(&inst, LpKConfig { window: 0 }).is_err());
        assert!(lp_k(&inst, LpKConfig { window: 9 }).is_err());
    }

    #[test]
    fn lp_k_is_generally_beaten_by_good_heuristics() {
        // The paper observes that most heuristics outperform the iterative
        // MILP. Individual random instances can go either way (lp.k is exact
        // inside each window), so check the aggregate statement: over a set
        // of instances, the best heuristic's total makespan does not exceed
        // lp.4's total makespan.
        let mut rng = StdRng::seed_from_u64(4242);
        let mut best_total = Time::ZERO;
        let mut lp4_total = Time::ZERO;
        for _ in 0..10 {
            let inst = random_instance_decoupled_memory(&mut rng, 20, 1.25);
            let (_, best) = dts_heuristics::best_heuristic(&inst).unwrap();
            best_total += best.makespan(&inst);
            lp4_total += lp_k(&inst, LpKConfig { window: 4 })
                .unwrap()
                .makespan(&inst);
        }
        assert!(best_total <= lp4_total);
    }
}
