//! Symbolic encoding of the MILP of Section 4.5.
//!
//! The formulation minimizes `l` subject to, for all tasks `i` and `j ≠ i`:
//!
//! ```text
//! e'_i <= l                                  (task i completes)
//! e_i  <= s'_i                               (transfer before computation)
//! e_j  <= s_i  + (1 - a_ij) L                (link exclusivity)
//! e_i  <= s_j  + a_ij L
//! e'_j <= s'_i + (1 - b_ij) L                (processor exclusivity)
//! e'_i <= s'_j + b_ij L
//! e'_j <= s_i  + (1 - c_ij) L                (definition of c_ij)
//! s_i  <  e'_j + c_ij L
//! Σ_{r≠i} (a_ir − c_ir) MC(r) + MC(i) <= C   (memory constraint)
//! a_ij + a_ji = 1,  b_ij + b_ji = 1
//! c_ij <= a_ij,  c_ij <= b_ij,  c_ij + c_ji <= 1
//! ```
//!
//! where `s_i`/`e_i` are the start/end of task `i`'s transfer, `s'_i`/`e'_i`
//! the start/end of its computation and `L = Σ_i (CM_i + CP_i)`.
//!
//! This module does not run an LP solver; it materializes the variables and
//! constraints so that (a) their number can be reported (as the paper
//! discusses the scalability of the formulation) and (b) any concrete
//! [`Schedule`] can be checked against the formulation, which the test-suite
//! uses to show that feasible schedules satisfy the MILP and infeasible ones
//! violate it.

use dts_core::prelude::*;
use std::fmt;

/// Assignment of the MILP decision variables induced by a concrete schedule.
#[derive(Debug, Clone)]
pub struct MilpAssignment {
    /// `a_ij`: task `i`'s transfer precedes task `j`'s transfer.
    pub a: Vec<Vec<bool>>,
    /// `b_ij`: task `i`'s computation precedes task `j`'s computation.
    pub b: Vec<Vec<bool>>,
    /// `c_ij`: task `i`'s transfer starts at or after the end of task `j`'s
    /// computation.
    pub c: Vec<Vec<bool>>,
    /// Objective value (makespan).
    pub objective: Time,
}

/// The MILP formulation for a given instance.
#[derive(Debug, Clone)]
pub struct MilpFormulation<'a> {
    instance: &'a Instance,
}

impl<'a> MilpFormulation<'a> {
    /// Builds the formulation for an instance.
    pub fn new(instance: &'a Instance) -> Self {
        MilpFormulation { instance }
    }

    /// The "big-M" constant `L = Σ_i (CM_i + CP_i)` used by the paper.
    pub fn big_m(&self) -> Time {
        self.instance.stats().sequential_upper_bound()
    }

    /// Number of boolean variables (`a`, `b`, `c` for every ordered pair).
    pub fn n_boolean_variables(&self) -> usize {
        let n = self.instance.len();
        3 * n * (n - 1)
    }

    /// Number of continuous variables (four time points per task plus the
    /// objective).
    pub fn n_continuous_variables(&self) -> usize {
        4 * self.instance.len() + 1
    }

    /// Number of constraints, counting every row listed in the module
    /// documentation (including the helper constraints the paper adds to
    /// strengthen the relaxation).
    pub fn n_constraints(&self) -> usize {
        let n = self.instance.len();
        let pairs = n * (n - 1);
        // completion + precedence per task.
        2 * n
            // link, processor and c-definition big-M rows: 6 per ordered pair.
            + 3 * pairs * 2
            // memory constraint per task.
            + n
            // helper rows: a_ij + a_ji = 1 and b_ij + b_ji = 1 per unordered
            // pair, plus c_ij <= a_ij, c_ij <= b_ij per ordered pair and
            // c_ij + c_ji <= 1 per unordered pair.
            + pairs / 2 * 2
            + 2 * pairs
            + pairs / 2
    }

    /// Extracts the boolean assignment induced by a schedule.
    pub fn assignment(&self, schedule: &Schedule) -> Option<MilpAssignment> {
        let n = self.instance.len();
        if schedule.len() != n {
            return None;
        }
        let mut comm_start = vec![Time::ZERO; n];
        let mut comm_end = vec![Time::ZERO; n];
        let mut comp_start = vec![Time::ZERO; n];
        let mut comp_end = vec![Time::ZERO; n];
        for entry in schedule.entries() {
            let i = entry.task.index();
            if i >= n {
                return None;
            }
            let task = self.instance.task(entry.task);
            comm_start[i] = entry.comm_start;
            comm_end[i] = entry.comm_start + task.comm_time;
            comp_start[i] = entry.comp_start;
            comp_end[i] = entry.comp_start + task.comp_time;
        }
        let mut a = vec![vec![false; n]; n];
        let mut b = vec![vec![false; n]; n];
        let mut c = vec![vec![false; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                // Order by start times; ties broken by index so that
                // a_ij + a_ji = 1 holds even for zero-length transfers.
                a[i][j] = (comm_start[i], i) < (comm_start[j], j);
                b[i][j] = (comp_start[i], i) < (comp_start[j], j);
                c[i][j] = comm_start[i] >= comp_end[j];
            }
        }
        Some(MilpAssignment {
            a,
            b,
            c,
            objective: schedule.makespan(self.instance),
        })
    }

    /// Checks a schedule against the MILP constraints. Returns the list of
    /// violated constraint names (empty means the schedule is a feasible MILP
    /// point).
    pub fn check(&self, schedule: &Schedule) -> Vec<String> {
        let n = self.instance.len();
        let mut violations = Vec::new();
        let Some(assignment) = self.assignment(schedule) else {
            return vec!["schedule does not cover every task exactly once".to_string()];
        };
        let mut comm_start = vec![Time::ZERO; n];
        let mut comm_end = vec![Time::ZERO; n];
        let mut comp_start = vec![Time::ZERO; n];
        let mut comp_end = vec![Time::ZERO; n];
        for entry in schedule.entries() {
            let i = entry.task.index();
            let task = self.instance.task(entry.task);
            comm_start[i] = entry.comm_start;
            comm_end[i] = entry.comm_start + task.comm_time;
            comp_start[i] = entry.comp_start;
            comp_end[i] = entry.comp_start + task.comp_time;
        }

        for i in 0..n {
            if comp_end[i] > assignment.objective {
                violations.push(format!("completion of task {i} exceeds the objective"));
            }
            if comm_end[i] > comp_start[i] {
                violations.push(format!("task {i} computes before its transfer ends"));
            }
        }
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                if assignment.a[i][j] && comm_end[i] > comm_start[j] && comm_end[i] > comm_start[i]
                {
                    // i's transfer precedes j's: link exclusivity requires
                    // e_i <= s_j (zero-length transfers never conflict).
                    if comm_start[j] < comm_end[i] && comm_end[j] > comm_start[j] {
                        violations.push(format!("transfers of {i} and {j} overlap"));
                    }
                }
                if assignment.b[i][j]
                    && comp_end[i] > comp_start[j]
                    && comp_end[i] > comp_start[i]
                    && comp_end[j] > comp_start[j]
                {
                    violations.push(format!("computations of {i} and {j} overlap"));
                }
                if assignment.c[i][j] && comm_start[i] < comp_end[j] {
                    violations.push(format!("c[{i}][{j}] set but transfer starts early"));
                }
            }
        }
        // Memory constraint: for every task i, the tasks whose transfer
        // precedes i's and whose computation has not finished when i's
        // transfer starts must fit together with i.
        let capacity = self.instance.capacity();
        for i in 0..n {
            let mut used = self.instance.task(TaskId(i)).mem;
            for r in 0..n {
                if r == i {
                    continue;
                }
                if assignment.a[r][i] && !assignment.c[i][r] {
                    used += self.instance.task(TaskId(r)).mem;
                }
            }
            if used > capacity {
                violations.push(format!(
                    "memory constraint violated when task {i} starts its transfer"
                ));
            }
        }
        violations
    }
}

impl fmt::Display for MilpFormulation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "MILP for {} tasks: {} boolean variables, {} continuous variables, {} constraints, L = {}",
            self.instance.len(),
            self.n_boolean_variables(),
            self.n_continuous_variables(),
            self.n_constraints(),
            self.big_m()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::instances::{table2, table3};
    use dts_core::simulate::simulate_sequence;

    #[test]
    fn counts_grow_quadratically() {
        let inst = table3();
        let f = MilpFormulation::new(&inst);
        assert_eq!(f.n_boolean_variables(), 3 * 4 * 3);
        assert_eq!(f.n_continuous_variables(), 17);
        assert!(f.n_constraints() > 4 * 3 * 3);
        assert_eq!(f.big_m(), Time::units_int(20));
        assert!(f.to_string().contains("boolean"));
    }

    #[test]
    fn feasible_schedule_satisfies_the_milp() {
        let inst = table3();
        let f = MilpFormulation::new(&inst);
        for h in [
            dts_heuristics::Heuristic::OOSIM,
            dts_heuristics::Heuristic::DOCPS,
            dts_heuristics::Heuristic::MAMR,
        ] {
            let sched = dts_heuristics::run_heuristic(&inst, h).unwrap();
            assert!(f.check(&sched).is_empty(), "{h}: {:?}", f.check(&sched));
        }
    }

    #[test]
    fn memory_violation_detected_by_milp_check() {
        // Execute the Table 3 OOSIM order as if memory were unbounded; the
        // resulting schedule violates the memory row of the MILP.
        let inst = table3();
        let order = dts_flowshop::johnson::johnson_order(&inst);
        let sched = dts_core::simulate::simulate_sequence_infinite(&inst, &order).unwrap();
        let f = MilpFormulation::new(&inst);
        let violations = f.check(&sched);
        assert!(
            violations.iter().any(|v| v.contains("memory")),
            "{violations:?}"
        );
    }

    #[test]
    fn assignment_booleans_are_consistent() {
        let inst = table2();
        let order = inst.task_ids();
        let sched = simulate_sequence(&inst, &order).unwrap();
        let f = MilpFormulation::new(&inst);
        let asg = f.assignment(&sched).unwrap();
        let n = inst.len();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                assert!(asg.a[i][j] ^ asg.a[j][i], "a[{i}][{j}] consistency");
                assert!(asg.b[i][j] ^ asg.b[j][i], "b[{i}][{j}] consistency");
                // c_ij <= a_ij and c_ij <= b_ij (helper constraints).
                if asg.c[i][j] {
                    assert!(asg.a[j][i], "c[{i}][{j}] implies j's transfer precedes");
                }
                assert!(!(asg.c[i][j] && asg.c[j][i]));
            }
        }
        assert_eq!(asg.objective, sched.makespan(&inst));
    }

    #[test]
    fn incomplete_schedule_rejected() {
        let inst = table3();
        let f = MilpFormulation::new(&inst);
        let sched = Schedule::new();
        assert!(!f.check(&sched).is_empty());
    }
}
