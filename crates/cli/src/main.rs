//! `dts` — command-line interface for the transfer-sched workspace.
//!
//! Subcommands:
//!
//! * `dts generate <hf|ccsd> <dir> [n_ranks]` — generate a trace suite and
//!   write one JSON trace file per rank;
//! * `dts characterize <trace.json>` — print the Fig. 8 workload
//!   characterization of a trace;
//! * `dts run <trace.json> <heuristic> [factor]` — run one heuristic on a
//!   trace at a memory capacity of `factor · mc` and print the result;
//! * `--model <spec>` on `generate` and `run` selects the execution model
//!   (`explicit`, `duplex`, `streams:<k>`, `implicit[:<eff>]`): `generate`
//!   stamps it into the trace files, `run` overrides whatever the trace
//!   carries;
//! * `dts sweep <trace.json>` — run every heuristic across the paper's
//!   capacity sweep and print CSV rows;
//! * `dts demo` — print the Gantt charts of the paper's Table 3–5 examples.

use dts_analysis::report::sweep_to_csv;
use dts_analysis::sweep::{capacity_factors, run_trace_sweep, SweepConfig};
use dts_chem::suite::{generate_partial_suite, SuiteConfig};
use dts_chem::{characterize, Kernel, Trace};
use dts_core::gantt;
use dts_core::metrics::ScheduleMetrics;
use dts_core::{CoreError, ExecutionModel};
use dts_flowshop::johnson::johnson_makespan;
use dts_heuristics::{run_heuristic, Heuristic};
use std::process::ExitCode;

/// Extracts an optional `--model <spec>` / `--model=<spec>` flag from `args`
/// and returns the remaining positional arguments alongside the parsed
/// model. Bad specs (unknown names, `streams:0`, non-finite efficiencies)
/// surface as clean errors through [`ExecutionModel::parse`].
fn take_model_flag(args: &[String]) -> Result<(Vec<String>, Option<ExecutionModel>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut model = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let spec = if arg == "--model" {
            iter.next()
                .ok_or("--model expects a value (explicit, duplex, streams:<k>, implicit[:<eff>])")?
                .as_str()
        } else if let Some(value) = arg.strip_prefix("--model=") {
            value
        } else {
            rest.push(arg.clone());
            continue;
        };
        model = Some(ExecutionModel::parse(spec).map_err(|e| e.to_string())?);
    }
    Ok((rest, model))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("demo") => cmd_demo(),
        _ => {
            eprintln!(
                "usage: dts <command>\n\
                 \n\
                 commands:\n\
                 \x20 generate <hf|ccsd> <dir> [n_ranks]   generate a trace suite as JSON files\n\
                 \x20 characterize <trace.json>             print the workload characterization\n\
                 \x20 run <trace.json> <heuristic> [factor] run one heuristic at factor x mc\n\
                 \x20 sweep <trace.json>                    run all heuristics across the capacity sweep (CSV)\n\
                 \x20 demo                                  print the paper's example schedules\n\
                 \n\
                 options (generate, run):\n\
                 \x20 --model <spec>  execution model: explicit | duplex | streams:<k> | implicit[:<eff>]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (args, model) = take_model_flag(args)?;
    let kernel = match args.first().map(String::as_str) {
        Some("hf") => Kernel::HartreeFock,
        Some("ccsd") => Kernel::Ccsd,
        _ => return Err("expected kernel 'hf' or 'ccsd'".into()),
    };
    let dir = args.get(1).ok_or("expected an output directory")?;
    let n_ranks: usize = args
        .get(2)
        .map(|s| s.parse().map_err(|_| "n_ranks must be an integer"))
        .transpose()?
        .unwrap_or(6);
    if n_ranks == 0 {
        return Err("n_ranks must be at least 1".into());
    }
    // Small 6-rank topology for quick suites, the paper's full 150-rank
    // topology beyond that. `generate_partial_suite` silently clamps to
    // the topology size, so reject a request even the full topology cannot
    // honor instead of quietly writing fewer files than asked for.
    let mut config = SuiteConfig::small();
    if n_ranks > config.topology.n_processes() {
        config = SuiteConfig::default();
    }
    let max_ranks = config.topology.n_processes();
    if n_ranks > max_ranks {
        return Err(format!(
            "{n_ranks} ranks requested, but the largest topology has only {max_ranks} \
             processes ({} nodes x {} workers)",
            config.topology.nodes, config.topology.workers_per_node
        ));
    }
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let mut traces = generate_partial_suite(kernel, &config, n_ranks);
    if let Some(model) = model {
        // Stamp the requested execution model into every trace so later
        // `dts run` / `dts sweep` invocations honor it without repeating
        // the flag. `Explicit` is stamped too: it documents the choice.
        for trace in &mut traces {
            trace.model = Some(model);
        }
    }
    for trace in &traces {
        let path = format!(
            "{dir}/{}-rank{:03}.json",
            kernel.name().to_lowercase(),
            trace.rank
        );
        trace.save(&path).map_err(|e| e.to_string())?;
        println!(
            "wrote {path} ({} tasks, mc = {})",
            trace.len(),
            trace.min_capacity()
        );
    }
    println!(
        "generated {} of {n_ranks} requested ranks in {dir}",
        traces.len()
    );
    Ok(())
}

fn load_trace(path: &str) -> Result<Trace, String> {
    Trace::load(path).map_err(|e| format!("cannot load {path}: {e}"))
}

fn cmd_characterize(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("expected a trace file")?;
    let trace = load_trace(path)?;
    let c = characterize(&trace).map_err(|e| e.to_string())?;
    println!("kernel             {}", trace.kernel);
    println!("rank               {}", trace.rank);
    println!("tasks              {}", c.n_tasks);
    println!("OMIM               {} us", c.omim.ticks());
    println!("sum comm / OMIM    {:.4}", c.sum_comm_ratio);
    println!("sum comp / OMIM    {:.4}", c.sum_comp_ratio);
    println!("max / OMIM         {:.4}", c.max_ratio);
    println!("sum / OMIM         {:.4}", c.sum_ratio);
    println!("max overlap gain   {:.1} %", 100.0 * c.max_overlap_gain());
    println!("mc                 {}", c.min_capacity);
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (args, model_override) = take_model_flag(args)?;
    let path = args.first().ok_or("expected a trace file")?;
    let heuristic_name = args.get(1).ok_or("expected a heuristic name")?;
    let factor: f64 = args
        .get(2)
        .map(|s| s.parse().map_err(|_| "factor must be a number"))
        .transpose()?
        .unwrap_or(1.5);
    // `to_instance_scaled` reports this too, but catching it before the
    // trace is even loaded gives a faster failure with the same message.
    if !factor.is_finite() || factor < 0.0 {
        return Err(CoreError::InvalidCapacityFactor(factor.to_string()).to_string());
    }
    let heuristic = Heuristic::from_name(heuristic_name)
        .ok_or_else(|| format!("unknown heuristic '{heuristic_name}'"))?;
    let trace = load_trace(path)?;
    let mut instance = trace
        .to_instance_scaled(factor)
        .map_err(|e| e.to_string())?;
    if let Some(model) = model_override {
        instance = instance.with_model(model).map_err(|e| e.to_string())?;
    }
    let omim = johnson_makespan(&instance);
    let schedule = run_heuristic(&instance, heuristic).map_err(|e| e.to_string())?;
    let makespan = schedule.makespan(&instance);
    println!("heuristic          {heuristic}");
    println!("model              {}", instance.model());
    println!(
        "capacity           {} ({}x mc)",
        instance.capacity(),
        factor
    );
    println!("makespan           {} us", makespan.ticks());
    println!("OMIM               {} us", omim.ticks());
    println!("ratio to optimal   {:.4}", makespan.ratio(omim));
    let metrics = ScheduleMetrics::of(&instance, &schedule);
    println!(
        "overlap fraction   {:.1} %",
        100.0 * metrics.overlap_fraction()
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("expected a trace file")?;
    let trace = load_trace(path)?;
    let config = SweepConfig {
        heuristics: Heuristic::ALL.to_vec(),
        factors: capacity_factors(),
    };
    let rows = run_trace_sweep(&trace, &config).map_err(|e| e.to_string())?;
    print!("{}", sweep_to_csv(&rows));
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    for (label, instance) in [
        ("Table 3 (capacity 6)", dts_core::instances::table3()),
        ("Table 4 (capacity 6)", dts_core::instances::table4()),
        ("Table 5 (capacity 9)", dts_core::instances::table5()),
    ] {
        println!("== {label} ==");
        let omim = johnson_makespan(&instance);
        for heuristic in [Heuristic::OOSIM, Heuristic::MAMR, Heuristic::OOLCMR] {
            let schedule = run_heuristic(&instance, heuristic).map_err(|e| e.to_string())?;
            println!(
                "{} — makespan {} (OMIM {}):\n{}",
                heuristic,
                schedule.makespan(&instance),
                omim,
                gantt::render(
                    &instance,
                    &schedule,
                    gantt::GanttOptions {
                        width: 60,
                        with_table: false
                    }
                )
            );
        }
    }
    Ok(())
}
