//! `dts` — command-line interface for the transfer-sched workspace.
//!
//! Subcommands:
//!
//! * `dts generate <kernel-or-family> <dir> [n_ranks]` — generate a trace
//!   suite and write one JSON trace file per rank. Besides the chemistry
//!   kernels `hf` and `ccsd`, the synthetic corpus families of
//!   `dts_workloads` are accepted (`md`, `dense-la`, `tie-heavy`,
//!   `memory-cliff`, `transfer-bound`) with `--tasks <n>`, `--seed <s>`
//!   and (dense-la only) `--skew <x>`;
//! * `dts characterize <trace.json>` — print the Fig. 8 workload
//!   characterization of a trace;
//! * `dts run <trace.json> <heuristic> [factor]` — run one heuristic on a
//!   trace at a memory capacity of `factor · mc` and print the result;
//! * `--model <spec>` on `generate` and `run` selects the execution model
//!   (`explicit`, `duplex`, `streams:<k>`, `implicit[:<eff>]`): `generate`
//!   stamps it into the trace files, `run` overrides whatever the trace
//!   carries;
//! * `dts sweep <trace.json>` — run every heuristic across the paper's
//!   capacity sweep and print CSV rows;
//! * `dts trace export <trace.json> <out.json>` — convert a trace to the
//!   versioned on-disk format; `dts trace import <versioned.json>
//!   <out.json>` — strictly validate a versioned file and convert it back;
//! * `dts calibrate <trace.json>... [--backend <b>] [--out <file>]` — fit
//!   a cost model (regression or history) to the observed per-task
//!   durations of one or more traces, print a residual report, and
//!   optionally write a versioned dts-cost-model file;
//! * `--cost-model <file|analytic>` on `run`, `request` and `corpus`
//!   re-predicts every task duration through a saved model before
//!   scheduling (`analytic` forces the trace's native durations); `corpus`
//!   prints the re-predicted suite as a what-if view instead of diffing
//!   the golden file;
//! * `dts corpus [--update-golden] [--golden <path>]` — run the
//!   golden-metric scenario suite (every heuristic × every execution model
//!   over the full corpus) and diff it against the committed golden file;
//! * `dts serve [--addr <host:port>] [...]` — run the scheduling daemon
//!   (length-framed JSON over TCP, instance caching, admission control);
//!   it prints the bound address — `--addr 127.0.0.1:0` picks a free port;
//! * `dts request <addr> <trace.json|family> <heuristic> [factor]` — send
//!   one scheduling request to a running daemon and print the reply;
//! * `dts demo` — print the Gantt charts of the paper's Table 3–5 examples.

use dts_analysis::report::sweep_to_csv;
use dts_analysis::sweep::{capacity_factors, run_trace_sweep, SweepConfig};
use dts_chem::suite::{generate_partial_suite, SuiteConfig};
use dts_chem::{characterize, Kernel, Trace};
use dts_core::gantt;
use dts_core::metrics::ScheduleMetrics;
use dts_core::perfmodel::{self, CalibrationObservations};
use dts_core::{CoreError, CostModel, CostModelSpec, ExecutionModel, MemSize, Task, Time};
use dts_flowshop::johnson::johnson_makespan;
use dts_heuristics::{run_heuristic, Heuristic};
use dts_server::{Client, Server, ServerConfig, SolveRequest, TraceSource};
use dts_workloads::corpus;
use dts_workloads::families::{generate_trace, GeneratorConfig, WorkloadFamily};
use dts_workloads::format;
use serde::{Deserialize, Value};
use std::io::Write as _;
use std::process::ExitCode;

/// Extracts an optional `--model <spec>` / `--model=<spec>` flag from `args`
/// and returns the remaining positional arguments alongside the parsed
/// model. Bad specs (unknown names, `streams:0`, non-finite efficiencies)
/// surface as clean errors through [`ExecutionModel::parse`].
fn take_model_flag(args: &[String]) -> Result<(Vec<String>, Option<ExecutionModel>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut model = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let spec = if arg == "--model" {
            iter.next()
                .ok_or("--model expects a value (explicit, duplex, streams:<k>, implicit[:<eff>])")?
                .as_str()
        } else if let Some(value) = arg.strip_prefix("--model=") {
            value
        } else {
            rest.push(arg.clone());
            continue;
        };
        model = Some(ExecutionModel::parse(spec).map_err(|e| e.to_string())?);
    }
    Ok((rest, model))
}

/// Extracts an optional `--<name> <value>` / `--<name>=<value>` flag from
/// `args`, returning the remaining arguments and the raw value.
fn take_value_flag(args: &[String], name: &str) -> Result<(Vec<String>, Option<String>), String> {
    let long = format!("--{name}");
    let assign = format!("--{name}=");
    let mut rest = Vec::with_capacity(args.len());
    let mut value = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if *arg == long {
            value = Some(
                iter.next()
                    .ok_or(format!("{long} expects a value"))?
                    .clone(),
            );
        } else if let Some(v) = arg.strip_prefix(&assign) {
            value = Some(v.to_string());
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, value))
}

/// Extracts an optional boolean `--<name>` flag from `args`.
fn take_bool_flag(args: &[String], name: &str) -> (Vec<String>, bool) {
    let long = format!("--{name}");
    let mut present = false;
    let rest = args
        .iter()
        .filter(|arg| {
            if **arg == long {
                present = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    (rest, present)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("calibrate") => cmd_calibrate(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        Some("demo") => cmd_demo(),
        _ => {
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The usage text, with every generator source enumerated: the chemistry
/// kernels first, then each synthetic family with its one-line shape
/// description from [`WorkloadFamily::description`].
fn usage() -> String {
    let mut families = String::new();
    for family in WorkloadFamily::ALL {
        families.push_str(&format!(
            "\x20   {:<15} {}\n",
            family.name(),
            family.description()
        ));
    }
    format!(
        "usage: dts <command>\n\
         \n\
         commands:\n\
         \x20 generate <source> <dir> [n_ranks]     generate a trace suite as JSON files\n\
         \x20 characterize <trace.json>             print the workload characterization\n\
         \x20 run <trace.json> <heuristic> [factor] run one heuristic at factor x mc\n\
         \x20 sweep <trace.json>                    run all heuristics across the capacity sweep (CSV)\n\
         \x20 trace export <trace.json> <out.json>  convert a trace to the versioned on-disk format\n\
         \x20 trace import <in.json> <out.json>     strictly validate a versioned trace file\n\
         \x20 calibrate <trace.json>...             fit a cost model to observed task durations\n\
         \x20 corpus [--update-golden]              run the golden-metric scenario suite\n\
         \x20 serve [--addr <host:port>]            run the scheduling daemon\n\
         \x20 request <addr> <source> <heuristic> [factor]  query a running daemon\n\
         \x20 demo                                  print the paper's example schedules\n\
         \n\
         generate sources:\n\
         \x20   hf              Hartree-Fock chemistry kernel (the paper's workload)\n\
         \x20   ccsd            CCSD chemistry kernel (the paper's workload)\n\
         {families}\
         \n\
         options (generate, run):\n\
         \x20 --model <spec>  execution model: explicit | duplex | streams:<k> | implicit[:<eff>]\n\
         options (run, request, corpus):\n\
         \x20 --cost-model <file|analytic>  re-predict task durations through a saved cost model\n\
         options (generate, synthetic families only):\n\
         \x20 --tasks <n>     tasks per rank (default per family)\n\
         \x20 --seed <s>      base seed of the suite (default 0)\n\
         \x20 --skew <x>      Zipf exponent, dense-la only (default 1.2)\n\
         \x20 --bandwidth <b> derive comm times from task memory at <b> bytes/s (±2% jitter)\n\
         options (calibrate):\n\
         \x20 --backend <b>   fitted backend: regression (default) | history\n\
         \x20 --out <file>    write the fitted dts-cost-model file here\n\
         options (corpus):\n\
         \x20 --golden <path> golden file to diff against (default: the committed one)\n\
         \x20 --update-golden rewrite the golden file from this build (the only sanctioned change path)\n\
         options (serve):\n\
         \x20 --addr <host:port>    bind address (default 127.0.0.1:7421; port 0 picks a free port)\n\
         \x20 --threads <n>         solver threads per batch (default: available parallelism)\n\
         \x20 --queue-depth <n>     pending-request ceiling before load shedding (default 256)\n\
         \x20 --max-tasks <n>       per-request task-count ceiling (default 65536)\n\
         \x20 --cache-entries <n>   solved-instance cache bound (default 512)\n\
         options (request):\n\
         \x20 <source> is a trace JSON file or a synthetic family name\n\
         \x20 --model <spec>  execution-model override, as for run\n\
         \x20 --tasks/--seed/--skew/--rank  family parameters, as for generate\n"
    )
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (args, model) = take_model_flag(args)?;
    let (args, tasks_flag) = take_value_flag(&args, "tasks")?;
    let (args, seed_flag) = take_value_flag(&args, "seed")?;
    let (args, skew_flag) = take_value_flag(&args, "skew")?;
    let (args, bandwidth_flag) = take_value_flag(&args, "bandwidth")?;
    let source = args.first().map(String::as_str).unwrap_or("");
    let kernel = match source {
        "hf" => Some(Kernel::HartreeFock),
        "ccsd" => Some(Kernel::Ccsd),
        _ => None,
    };
    let family = WorkloadFamily::from_name(source);
    if kernel.is_none() && family.is_none() {
        let names: Vec<&str> = WorkloadFamily::ALL.iter().map(|f| f.name()).collect();
        return Err(format!(
            "unknown generator source '{source}'; expected hf, ccsd, {}",
            names.join(", ")
        ));
    }
    if kernel.is_some() {
        // The chemistry suites are fixed reproductions of the paper's
        // workload: their size comes from the topology argument and they
        // have no tunable shape, so the synthetic-family flags are a
        // usage error, not a silent no-op.
        for (flag, value) in [
            ("--tasks", &tasks_flag),
            ("--seed", &seed_flag),
            ("--skew", &skew_flag),
            ("--bandwidth", &bandwidth_flag),
        ] {
            if value.is_some() {
                return Err(format!(
                    "{flag} only applies to the synthetic families, not the '{source}' kernel"
                ));
            }
        }
    }
    let dir = args.get(1).ok_or("expected an output directory")?;
    let n_ranks: usize = args
        .get(2)
        .map(|s| s.parse().map_err(|_| "n_ranks must be an integer"))
        .transpose()?
        .unwrap_or(6);
    if n_ranks == 0 {
        return Err("n_ranks must be at least 1".into());
    }
    if let Some(family) = family {
        return generate_family_suite(
            family,
            dir,
            n_ranks,
            &tasks_flag,
            &seed_flag,
            &skew_flag,
            &bandwidth_flag,
            model,
        );
    }
    let kernel = kernel.unwrap_or(Kernel::HartreeFock);
    // Small 6-rank topology for quick suites, the paper's full 150-rank
    // topology beyond that. `generate_partial_suite` silently clamps to
    // the topology size, so reject a request even the full topology cannot
    // honor instead of quietly writing fewer files than asked for.
    let mut config = SuiteConfig::small();
    if n_ranks > config.topology.n_processes() {
        config = SuiteConfig::default();
    }
    let max_ranks = config.topology.n_processes();
    if n_ranks > max_ranks {
        return Err(format!(
            "{n_ranks} ranks requested, but the largest topology has only {max_ranks} \
             processes ({} nodes x {} workers)",
            config.topology.nodes, config.topology.workers_per_node
        ));
    }
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let mut traces = generate_partial_suite(kernel, &config, n_ranks);
    if let Some(model) = model {
        // Stamp the requested execution model into every trace so later
        // `dts run` / `dts sweep` invocations honor it without repeating
        // the flag. `Explicit` is stamped too: it documents the choice.
        for trace in &mut traces {
            trace.model = Some(model);
        }
    }
    for trace in &traces {
        let path = format!(
            "{dir}/{}-rank{:03}.json",
            kernel.name().to_lowercase(),
            trace.rank
        );
        trace.save(&path).map_err(|e| e.to_string())?;
        println!(
            "wrote {path} ({} tasks, mc = {})",
            trace.len(),
            trace.min_capacity()
        );
    }
    println!(
        "generated {} of {n_ranks} requested ranks in {dir}",
        traces.len()
    );
    Ok(())
}

/// Generates `n_ranks` traces of a synthetic corpus family. The flags are
/// validated through [`GeneratorConfig::validate`], so `--skew` on a
/// family that does not support it fails with the same typed message the
/// library reports.
#[allow(clippy::too_many_arguments)]
fn generate_family_suite(
    family: WorkloadFamily,
    dir: &str,
    n_ranks: usize,
    tasks_flag: &Option<String>,
    seed_flag: &Option<String>,
    skew_flag: &Option<String>,
    bandwidth_flag: &Option<String>,
    model: Option<ExecutionModel>,
) -> Result<(), String> {
    let mut config = GeneratorConfig::new(family);
    if let Some(tasks) = tasks_flag {
        config.n_tasks = tasks
            .parse()
            .map_err(|_| format!("--tasks must be a positive integer, got '{tasks}'"))?;
    }
    if let Some(seed) = seed_flag {
        config.seed = seed
            .parse()
            .map_err(|_| format!("--seed must be a non-negative integer, got '{seed}'"))?;
    }
    if let Some(skew) = skew_flag {
        config.skew = Some(
            skew.parse()
                .map_err(|_| format!("--skew must be a number, got '{skew}'"))?,
        );
    }
    if let Some(bandwidth) = bandwidth_flag {
        config.bandwidth = Some(bandwidth.parse().map_err(|_| {
            format!("--bandwidth must be a positive number of bytes per second, got '{bandwidth}'")
        })?);
    }
    config.validate().map_err(|e| e.to_string())?;
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    for rank in 0..n_ranks {
        let mut trace = generate_trace(&config, rank).map_err(|e| e.to_string())?;
        if let Some(model) = model {
            trace.model = Some(model);
        }
        let path = format!("{dir}/{}-rank{rank:03}.json", family.name());
        trace.save(&path).map_err(|e| e.to_string())?;
        println!(
            "wrote {path} ({} tasks, mc = {})",
            trace.len(),
            trace.min_capacity()
        );
    }
    println!("generated {n_ranks} {family} ranks in {dir}");
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (verb, input, output) = match (args.first(), args.get(1), args.get(2)) {
        (Some(verb), Some(input), Some(output)) if args.len() == 3 => {
            (verb.as_str(), input, output)
        }
        _ => return Err("usage: dts trace <import|export> <input.json> <output.json>".into()),
    };
    match verb {
        "export" => {
            // Accept what `dts generate` writes, re-emit versioned.
            let trace = load_trace(input)?;
            format::export_file(&trace, output)
                .map_err(|e| format!("cannot export {input}: {e}"))?;
            println!(
                "exported {input} -> {output} (dts-trace v{}, {} tasks)",
                format::FORMAT_VERSION,
                trace.len()
            );
        }
        "import" => {
            // Strictly validate the versioned file, re-emit what the rest
            // of the toolchain (`dts run`, `dts sweep`) reads.
            let trace =
                format::import_file(input).map_err(|e| format!("cannot import {input}: {e}"))?;
            trace.save(output).map_err(|e| e.to_string())?;
            println!(
                "imported {input} -> {output} ({} tasks, kernel {}, mc = {})",
                trace.len(),
                trace.kernel,
                trace.min_capacity()
            );
        }
        other => {
            return Err(format!(
                "unknown trace subcommand '{other}'; expected 'import' or 'export'"
            ))
        }
    }
    Ok(())
}

/// Resolves a `--cost-model` argument: the literal `analytic` (any case)
/// or a path to a dts-cost-model file, strictly validated on load.
fn load_cost_model(arg: &str) -> Result<CostModelSpec, String> {
    if arg.eq_ignore_ascii_case("analytic") {
        return Ok(CostModelSpec::Analytic);
    }
    perfmodel::import_model_file(std::path::Path::new(arg)).map_err(|e| e.to_string())
}

/// Stamps a cost-model override into a trace before it materializes an
/// instance: a fitted spec replaces whatever the trace embeds, and an
/// explicit `analytic` clears it (forcing the native durations).
fn apply_cost_model_override(trace: &mut Trace, arg: &str) -> Result<(), String> {
    let spec = load_cost_model(arg)?;
    trace.cost_model = (!spec.is_analytic()).then_some(spec);
    Ok(())
}

fn cmd_calibrate(args: &[String]) -> Result<(), String> {
    let (args, backend_flag) = take_value_flag(args, "backend")?;
    let (args, out_flag) = take_value_flag(&args, "out")?;
    if args.is_empty() {
        return Err(
            "expected at least one trace file; usage: dts calibrate <trace.json>... \
             [--backend regression|history] [--out <file>]"
                .into(),
        );
    }
    let backend = backend_flag.as_deref().unwrap_or("regression");
    let mut observations = CalibrationObservations::default();
    for path in &args {
        let mut trace = load_trace(path)?;
        // Calibration reads the trace's *native* durations: an embedded
        // cost model would make the fit chase its own predictions.
        trace.cost_model = None;
        let instance = trace
            .to_instance_scaled(1.0)
            .map_err(|e| format!("cannot build an instance from {path}: {e}"))?;
        observations.extend(perfmodel::observations_of(&instance));
        println!("loaded             {path} ({} tasks)", instance.len());
    }
    let spec = match backend {
        "regression" => observations.fit_regression(),
        "history" => observations.fit_history(),
        other => {
            return Err(format!(
                "unknown backend '{other}'; expected regression or history"
            ))
        }
    }
    .map_err(|e| e.to_string())?;
    // Residual report: how well the fitted model re-predicts the very
    // observations it was fitted from, per observation kind. The scaled
    // integer fields keep the lines stable and greppable (100 bp = 1 %,
    // 1_000_000 ppm = perfect R^2).
    let probe = |bytes| {
        Task::new(
            "probe",
            Time::from_micros(0),
            Time::from_micros(0),
            MemSize::from_bytes(bytes),
        )
    };
    let transfer = perfmodel::fit_quality(&observations.transfer, |bytes| {
        spec.transfer_time(&probe(bytes), perfmodel::LinkClass::HostToDevice)
            .ticks()
    });
    let compute = perfmodel::fit_quality(&observations.compute, |bytes| {
        spec.compute_time(&probe(bytes), perfmodel::ComputeBackend::Cpu)
            .ticks()
    });
    println!("backend            {}", spec.backend_name());
    for (kind, report) in [("transfer fit", &transfer), ("compute fit", &compute)] {
        println!(
            "{kind:<18} samples={} skipped_zero={} mean_rel_err_bp={} r2_ppm={}",
            report.samples, report.skipped_zero, report.mean_rel_err_bp, report.r2_ppm
        );
    }
    if let Some(out) = out_flag {
        perfmodel::export_model_file(&spec, std::path::Path::new(&out))
            .map_err(|e| e.to_string())?;
        println!("wrote              {out}");
    }
    Ok(())
}

fn cmd_corpus(args: &[String]) -> Result<(), String> {
    let (args, update) = take_bool_flag(args, "update-golden");
    let (args, golden_flag) = take_value_flag(&args, "golden")?;
    let (args, cost_model_flag) = take_value_flag(&args, "cost-model")?;
    if let Some(stray) = args.first() {
        return Err(format!(
            "unexpected argument '{stray}'; usage: dts corpus [--update-golden] [--golden <path>] \
             [--cost-model <file|analytic>]"
        ));
    }
    if let Some(arg) = &cost_model_flag {
        let spec = load_cost_model(arg)?;
        if update {
            return Err(
                "--update-golden cannot be combined with --cost-model: the golden file \
                 pins the analytic baseline only"
                    .into(),
            );
        }
        if spec.is_analytic() {
            // `analytic` is exactly the golden configuration; fall through
            // to the normal golden diff below.
        } else {
            // What-if view: the same suite under re-predicted durations,
            // rendered in the golden format but never compared against
            // (or written to) the golden file.
            let current = corpus::run_corpus_with(Some(&spec)).map_err(|e| e.to_string())?;
            println!(
                "what-if corpus under the {} cost model ({} entries, not diffed against the golden):",
                spec.backend_name(),
                current.len()
            );
            print!("{}", corpus::render_golden(&current));
            return Ok(());
        }
    }
    let golden_path = golden_flag
        .map(std::path::PathBuf::from)
        .unwrap_or_else(corpus::default_golden_path);
    let current = corpus::run_corpus().map_err(|e| e.to_string())?;
    if update {
        std::fs::write(&golden_path, corpus::render_golden(&current)).map_err(|e| e.to_string())?;
        println!(
            "blessed {} corpus entries into {}",
            current.len(),
            golden_path.display()
        );
        return Ok(());
    }
    let golden_json = std::fs::read_to_string(&golden_path).map_err(|e| {
        format!(
            "cannot read golden file {}: {e}\n(run `dts corpus --update-golden` to create it)",
            golden_path.display()
        )
    })?;
    let golden = corpus::parse_golden(&golden_json).map_err(|e| e.to_string())?;
    let report = corpus::compare(&current, &golden);
    if report.is_clean() {
        println!(
            "corpus clean: {} entries match {}",
            current.len(),
            golden_path.display()
        );
        Ok(())
    } else {
        Err(format!("corpus drifted from golden:\n{}", report.render()))
    }
}

/// Parses a numeric flag value with a flag-specific error message.
fn parse_flag<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("--{flag} expects a number, got '{value}'"))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (args, addr_flag) = take_value_flag(args, "addr")?;
    let (args, threads_flag) = take_value_flag(&args, "threads")?;
    let (args, depth_flag) = take_value_flag(&args, "queue-depth")?;
    let (args, tasks_flag) = take_value_flag(&args, "max-tasks")?;
    let (args, cache_flag) = take_value_flag(&args, "cache-entries")?;
    if let Some(stray) = args.first() {
        return Err(format!(
            "unexpected argument '{stray}'; usage: dts serve [--addr <host:port>] \
             [--threads <n>] [--queue-depth <n>] [--max-tasks <n>] [--cache-entries <n>]"
        ));
    }
    let mut config = ServerConfig {
        addr: addr_flag.unwrap_or_else(|| "127.0.0.1:7421".to_string()),
        ..ServerConfig::default()
    };
    if let Some(v) = threads_flag {
        config.threads = parse_flag("threads", &v)?;
    }
    if let Some(v) = depth_flag {
        config.queue_depth = parse_flag("queue-depth", &v)?;
    }
    if let Some(v) = tasks_flag {
        config.max_tasks = parse_flag("max-tasks", &v)?;
    }
    if let Some(v) = cache_flag {
        config.cache_entries = parse_flag("cache-entries", &v)?;
    }
    let handle = Server::start(config).map_err(|e| format!("cannot start daemon: {e}"))?;
    // The bound address is the first line of output, so scripts (and the
    // e2e tests) can bind port 0 and discover the port.
    println!("dts serve listening on {}", handle.local_addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    // Serve until killed; the daemon threads own all the work.
    loop {
        std::thread::park();
    }
}

fn cmd_request(args: &[String]) -> Result<(), String> {
    let (args, model) = take_model_flag(args)?;
    let (args, cost_model_flag) = take_value_flag(&args, "cost-model")?;
    let (args, tasks_flag) = take_value_flag(&args, "tasks")?;
    let (args, seed_flag) = take_value_flag(&args, "seed")?;
    let (args, skew_flag) = take_value_flag(&args, "skew")?;
    let (args, rank_flag) = take_value_flag(&args, "rank")?;
    let addr = args
        .first()
        .ok_or("expected a daemon address (host:port)")?;
    let source_arg = args
        .get(1)
        .ok_or("expected a trace file or a family name")?;
    let heuristic_name = args.get(2).ok_or("expected a heuristic name")?;
    let factor: f64 = args
        .get(3)
        .map(|s| s.parse().map_err(|_| "factor must be a number"))
        .transpose()?
        .unwrap_or(1.5);
    let heuristic = Heuristic::from_name(heuristic_name)
        .ok_or_else(|| format!("unknown heuristic '{heuristic_name}'"))?;

    let source = if let Some(family) = WorkloadFamily::from_name(source_arg) {
        let mut config = GeneratorConfig::new(family);
        if let Some(tasks) = &tasks_flag {
            config.n_tasks = parse_flag("tasks", tasks)?;
        }
        if let Some(seed) = &seed_flag {
            config.seed = parse_flag("seed", seed)?;
        }
        if let Some(skew) = &skew_flag {
            config.skew = Some(parse_flag("skew", skew)?);
        }
        let rank = match &rank_flag {
            Some(rank) => parse_flag("rank", rank)?,
            None => 0,
        };
        TraceSource::Family { config, rank }
    } else {
        for (flag, value) in [
            ("--tasks", &tasks_flag),
            ("--seed", &seed_flag),
            ("--skew", &skew_flag),
            ("--rank", &rank_flag),
        ] {
            if value.is_some() {
                return Err(format!("{flag} only applies to family requests"));
            }
        }
        // Mirror the daemon's typed error shape for a trace that cannot
        // even be loaded client-side: the bracketed code is the same
        // `invalid-trace` the daemon would answer with (`ErrorCode::
        // InvalidTrace`), so scripts dispatch on one spelling either way.
        TraceSource::Inline(Trace::load(source_arg).map_err(|e| {
            format!(
                "[{}] cannot load {source_arg}: {e}",
                dts_server::ErrorCode::InvalidTrace
            )
        })?)
    };

    let cost_model = match &cost_model_flag {
        // An explicit `analytic` is sent as `Some(Analytic)`: on the wire
        // it overrides (clears) whatever cost model the trace embeds,
        // which an absent field would leave in force.
        Some(arg) => Some(load_cost_model(arg)?),
        None => None,
    };
    let request = SolveRequest {
        source,
        heuristic,
        model,
        cost_model,
        factor,
    };
    let mut client = Client::connect(addr.as_str())
        .map_err(|e| format!("cannot reach daemon at {addr}: {e}"))?;
    let response = client.send_request(&request).map_err(|e| e.to_string())?;
    print_response(&response)
}

/// Renders a daemon response; error replies become the process error.
fn print_response(response: &Value) -> Result<(), String> {
    let text = |name: &str| -> Result<String, String> {
        response
            .field(name)
            .ok()
            .and_then(|v| String::from_value(v).ok())
            .ok_or_else(|| format!("malformed daemon response: missing '{name}'"))
    };
    if text("status")? != "ok" {
        return Err(format!(
            "daemon error [{}]: {}",
            text("code")?,
            text("message")?
        ));
    }
    let cached = response
        .field("cached")
        .ok()
        .and_then(|v| bool::from_value(v).ok())
        .ok_or("malformed daemon response: missing 'cached'")?;
    let result = response
        .field("result")
        .map_err(|_| "malformed daemon response: missing 'result'")?;
    let result_text = |name: &str| -> Result<String, String> {
        result
            .field(name)
            .ok()
            .and_then(|v| String::from_value(v).ok())
            .ok_or_else(|| format!("malformed daemon response: missing result '{name}'"))
    };
    let result_u64 = |name: &str| -> Result<u64, String> {
        result
            .field(name)
            .ok()
            .and_then(|v| u64::from_value(v).ok())
            .ok_or_else(|| format!("malformed daemon response: missing result '{name}'"))
    };
    println!("status             ok");
    println!("cached             {cached}");
    println!("digest             {}", text("digest")?);
    println!("heuristic          {}", result_text("heuristic")?);
    println!("model              {}", result_text("model")?);
    println!("tasks              {}", result_u64("n_tasks")?);
    println!("makespan           {} us", result_u64("makespan_us")?);
    println!("comm idle          {} us", result_u64("comm_idle_us")?);
    println!("comp idle          {} us", result_u64("comp_idle_us")?);
    Ok(())
}

fn load_trace(path: &str) -> Result<Trace, String> {
    Trace::load(path).map_err(|e| format!("cannot load {path}: {e}"))
}

fn cmd_characterize(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("expected a trace file")?;
    let trace = load_trace(path)?;
    let c = characterize(&trace).map_err(|e| e.to_string())?;
    println!("kernel             {}", trace.kernel);
    println!("rank               {}", trace.rank);
    println!("tasks              {}", c.n_tasks);
    println!("OMIM               {} us", c.omim.ticks());
    println!("sum comm / OMIM    {:.4}", c.sum_comm_ratio);
    println!("sum comp / OMIM    {:.4}", c.sum_comp_ratio);
    println!("max / OMIM         {:.4}", c.max_ratio);
    println!("sum / OMIM         {:.4}", c.sum_ratio);
    println!("max overlap gain   {:.1} %", 100.0 * c.max_overlap_gain());
    println!("mc                 {}", c.min_capacity);
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (args, model_override) = take_model_flag(args)?;
    let (args, cost_model_flag) = take_value_flag(&args, "cost-model")?;
    let path = args.first().ok_or("expected a trace file")?;
    let heuristic_name = args.get(1).ok_or("expected a heuristic name")?;
    let factor: f64 = args
        .get(2)
        .map(|s| s.parse().map_err(|_| "factor must be a number"))
        .transpose()?
        .unwrap_or(1.5);
    // `to_instance_scaled` reports this too, but catching it before the
    // trace is even loaded gives a faster failure with the same message.
    if !factor.is_finite() || factor < 0.0 {
        return Err(CoreError::InvalidCapacityFactor(factor.to_string()).to_string());
    }
    let heuristic = Heuristic::from_name(heuristic_name)
        .ok_or_else(|| format!("unknown heuristic '{heuristic_name}'"))?;
    let mut trace = load_trace(path)?;
    if let Some(arg) = &cost_model_flag {
        apply_cost_model_override(&mut trace, arg)?;
    }
    let mut instance = trace
        .to_instance_scaled(factor)
        .map_err(|e| e.to_string())?;
    if let Some(model) = model_override {
        instance = instance.with_model(model).map_err(|e| e.to_string())?;
    }
    let omim = johnson_makespan(&instance);
    let schedule = run_heuristic(&instance, heuristic).map_err(|e| e.to_string())?;
    let makespan = schedule.makespan(&instance);
    println!("heuristic          {heuristic}");
    println!("model              {}", instance.model());
    println!("cost model         {}", instance.cost_model());
    println!(
        "capacity           {} ({}x mc)",
        instance.capacity(),
        factor
    );
    println!("makespan           {} us", makespan.ticks());
    println!("OMIM               {} us", omim.ticks());
    println!("ratio to optimal   {:.4}", makespan.ratio(omim));
    let metrics = ScheduleMetrics::of(&instance, &schedule);
    println!(
        "overlap fraction   {:.1} %",
        100.0 * metrics.overlap_fraction()
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("expected a trace file")?;
    let trace = load_trace(path)?;
    let config = SweepConfig {
        heuristics: Heuristic::ALL.to_vec(),
        factors: capacity_factors(),
    };
    let rows = run_trace_sweep(&trace, &config).map_err(|e| e.to_string())?;
    print!("{}", sweep_to_csv(&rows));
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    for (label, instance) in [
        ("Table 3 (capacity 6)", dts_core::instances::table3()),
        ("Table 4 (capacity 6)", dts_core::instances::table4()),
        ("Table 5 (capacity 9)", dts_core::instances::table5()),
    ] {
        println!("== {label} ==");
        let omim = johnson_makespan(&instance);
        for heuristic in [Heuristic::OOSIM, Heuristic::MAMR, Heuristic::OOLCMR] {
            let schedule = run_heuristic(&instance, heuristic).map_err(|e| e.to_string())?;
            println!(
                "{} — makespan {} (OMIM {}):\n{}",
                heuristic,
                schedule.makespan(&instance),
                omim,
                gantt::render(
                    &instance,
                    &schedule,
                    gantt::GanttOptions {
                        width: 60,
                        with_table: false
                    }
                )
            );
        }
    }
    Ok(())
}
