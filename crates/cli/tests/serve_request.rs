//! End-to-end test of `dts serve` + `dts request` through the real binary.
//!
//! Spawns the daemon on port 0, discovers the bound address from its
//! first stdout line, queries it with `dts request`, and checks both the
//! success path (cold solve, then cache hit) and a typed error path.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

/// Kills the daemon child on drop so a failing assertion cannot leak it.
struct DaemonGuard {
    child: Child,
    addr: String,
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon() -> DaemonGuard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dts"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dts serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listening line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address on the listening line")
        .to_string();
    assert!(
        line.contains("listening on"),
        "unexpected first line: {line:?}"
    );
    DaemonGuard { child, addr }
}

fn request(addr: &str, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dts"))
        .args(["request", addr])
        .args(extra)
        .output()
        .expect("run dts request")
}

#[test]
fn serve_answers_requests_and_reports_cache_hits() {
    let daemon = spawn_daemon();

    let cold = request(
        &daemon.addr,
        &["md", "DOCPS", "1.5", "--tasks", "16", "--seed", "9"],
    );
    let cold_out = String::from_utf8_lossy(&cold.stdout).to_string();
    assert!(
        cold.status.success(),
        "cold request failed: {cold_out}\n{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert!(cold_out.contains("status             ok"), "{cold_out}");
    assert!(cold_out.contains("cached             false"), "{cold_out}");
    assert!(cold_out.contains("makespan"), "{cold_out}");

    let hot = request(
        &daemon.addr,
        &["md", "DOCPS", "1.5", "--tasks", "16", "--seed", "9"],
    );
    let hot_out = String::from_utf8_lossy(&hot.stdout).to_string();
    assert!(hot.status.success(), "hot request failed: {hot_out}");
    assert!(hot_out.contains("cached             true"), "{hot_out}");

    // Identical content digest and metrics on hit and cold solve.
    let line = |out: &str, key: &str| -> String {
        out.lines()
            .find(|l| l.starts_with(key))
            .unwrap_or_default()
            .to_string()
    };
    assert_eq!(line(&cold_out, "digest"), line(&hot_out, "digest"));
    assert_eq!(line(&cold_out, "makespan"), line(&hot_out, "makespan"));
}

#[test]
fn request_surfaces_typed_daemon_errors() {
    let daemon = spawn_daemon();

    // An infeasible capacity factor is a daemon-side typed error.
    let out = request(&daemon.addr, &["md", "OS", "0.1", "--tasks", "8"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("infeasible"), "stderr: {stderr}");

    // An unknown heuristic is rejected client-side with the same message
    // shape as `dts run`.
    let out = request(&daemon.addr, &["md", "NOPE"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("unknown heuristic"), "stderr: {stderr}");
}

#[test]
fn request_reports_a_missing_trace_file_with_a_typed_code() {
    let daemon = spawn_daemon();

    // Regression: a nonexistent trace path used to surface as a bare IO
    // error with no error code; it now carries the same `invalid-trace`
    // code the daemon uses for unreadable trace payloads, plus the path.
    let out = request(&daemon.addr, &["/no/such/trace.json", "OS"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        stderr.contains("invalid-trace") && stderr.contains("/no/such/trace.json"),
        "stderr: {stderr}"
    );
}
