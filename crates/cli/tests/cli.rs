//! End-to-end regression tests for the `dts` binary, driving the real
//! executable (`CARGO_BIN_EXE_dts`) the way a shell would.
//!
//! Pinned bugs:
//!
//! * `dts run <trace> <heuristic> <factor>` used to panic via the
//!   `MemSize::scale` assert on a negative, NaN or infinite factor instead
//!   of reporting an error;
//! * `dts generate <kernel> <dir> [n_ranks]` used to silently clamp
//!   `n_ranks` to the topology size — a request for 500 ranks quietly
//!   wrote 150 files and exited 0.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn dts(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dts"))
        .args(args)
        .output()
        .expect("the dts binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A scratch directory that cleans up after itself even on panic.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dts-cli-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Generates one HF trace into `dir` and returns the trace file's path.
fn generate_one_trace(dir: &Path) -> PathBuf {
    let dir_str = dir.to_str().expect("scratch path is UTF-8");
    let output = dts(&["generate", "hf", dir_str, "1"]);
    assert!(
        output.status.success(),
        "trace generation failed: {}",
        stderr(&output)
    );
    dir.join("hf-rank000.json")
}

#[test]
fn run_rejects_malformed_capacity_factors() {
    let scratch = ScratchDir::new("run-bad-factor");
    let trace = generate_one_trace(scratch.path());
    let trace = trace.to_str().unwrap();
    for factor in ["-1", "nan", "inf", "-inf"] {
        let output = dts(&["run", trace, "MAMR", factor]);
        // Regression: these used to abort with the `MemSize::scale` panic
        // (signal, no diagnostic); now they are ordinary errors.
        assert_eq!(
            output.status.code(),
            Some(1),
            "factor {factor} should exit 1, got {:?}",
            output.status
        );
        let message = stderr(&output);
        assert!(
            message.contains("invalid capacity factor"),
            "factor {factor}: unexpected diagnostic {message:?}"
        );
    }
}

#[test]
fn run_accepts_a_valid_factor() {
    let scratch = ScratchDir::new("run-ok");
    let trace = generate_one_trace(scratch.path());
    let output = dts(&["run", trace.to_str().unwrap(), "MAMR", "1.5"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("makespan"), "unexpected output: {text:?}");
}

#[test]
fn generate_rejects_more_ranks_than_the_largest_topology() {
    let scratch = ScratchDir::new("generate-too-many");
    let dir = scratch.path().to_str().unwrap();
    // Regression: 500 ranks used to silently clamp to the topology's 150
    // processes and exit 0 after writing fewer files than requested.
    let output = dts(&["generate", "ccsd", dir, "500"]);
    assert_eq!(output.status.code(), Some(1));
    let message = stderr(&output);
    assert!(
        message.contains("500 ranks requested") && message.contains("150"),
        "unexpected diagnostic: {message:?}"
    );
    // Nothing was generated.
    assert_eq!(std::fs::read_dir(scratch.path()).unwrap().count(), 0);
}

#[test]
fn generate_reports_how_many_ranks_were_written() {
    let scratch = ScratchDir::new("generate-count");
    let dir = scratch.path().to_str().unwrap();
    let output = dts(&["generate", "hf", dir, "2"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(
        stdout(&output).contains("generated 2 of 2 requested ranks"),
        "unexpected output: {:?}",
        stdout(&output)
    );
    assert_eq!(std::fs::read_dir(scratch.path()).unwrap().count(), 2);
}

#[test]
fn generate_rejects_zero_ranks() {
    let scratch = ScratchDir::new("generate-zero");
    let output = dts(&["generate", "hf", scratch.path().to_str().unwrap(), "0"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("at least 1"));
}

#[test]
fn run_rejects_malformed_execution_models() {
    let scratch = ScratchDir::new("run-bad-model");
    let trace = generate_one_trace(scratch.path());
    let trace = trace.to_str().unwrap();
    for spec in [
        "bogus",
        "streams",
        "streams:0",
        "streams:-2",
        "streams:two",
        "implicit:-0.5",
        "implicit:1.5",
        "implicit:NaN",
        "implicit:inf",
        "explicit:1",
        "duplex:2",
        "",
    ] {
        let output = dts(&["run", trace, "MAMR", "1.5", &format!("--model={spec}")]);
        assert_eq!(
            output.status.code(),
            Some(1),
            "model {spec:?} should exit 1, got {:?}",
            output.status
        );
        let message = stderr(&output);
        assert!(
            message.contains("error:") && message.contains("invalid execution model"),
            "model {spec:?}: unexpected diagnostic {message:?}"
        );
        assert!(
            !message.contains("panicked"),
            "model {spec:?} panicked: {message:?}"
        );
    }
    // A dangling `--model` with no value is also a clean error.
    let output = dts(&["run", trace, "MAMR", "1.5", "--model"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("--model expects a value"));
}

#[test]
fn run_echoes_the_execution_model() {
    let scratch = ScratchDir::new("run-model-echo");
    let trace = generate_one_trace(scratch.path());
    let trace = trace.to_str().unwrap();
    // The default explicit model is echoed too, so reports are
    // self-describing.
    let output = dts(&["run", trace, "MAMR", "1.5"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(
        stdout(&output).contains("model              explicit"),
        "unexpected output: {:?}",
        stdout(&output)
    );
    let output = dts(&["run", trace, "MAMR", "1.5", "--model", "duplex"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(
        stdout(&output).contains("model              duplex"),
        "unexpected output: {:?}",
        stdout(&output)
    );
}

#[test]
fn overlap_models_never_lengthen_a_run() {
    // The same trace, heuristic and capacity under each model: duplex and
    // streams cannot end later than explicit, and full implicit overlap
    // cannot end later than duplex.
    let scratch = ScratchDir::new("run-model-compare");
    let trace = generate_one_trace(scratch.path());
    let trace = trace.to_str().unwrap();
    let makespan_under = |spec: &str| -> u64 {
        let output = dts(&["run", trace, "LCMR", "1.5", "--model", spec]);
        assert!(output.status.success(), "stderr: {}", stderr(&output));
        let text = stdout(&output);
        let line = text
            .lines()
            .find(|l| l.starts_with("makespan"))
            .unwrap_or_else(|| panic!("no makespan line in {text:?}"));
        line.split_whitespace()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("unparsable makespan line {line:?}"))
    };
    let explicit = makespan_under("explicit");
    let duplex = makespan_under("duplex");
    let streams = makespan_under("streams:4");
    let implicit = makespan_under("implicit");
    assert!(duplex <= explicit, "duplex {duplex} vs explicit {explicit}");
    assert!(
        streams <= explicit,
        "streams {streams} vs explicit {explicit}"
    );
    assert!(implicit <= duplex, "implicit {implicit} vs duplex {duplex}");
}

#[test]
fn generate_stamps_the_model_into_trace_files() {
    let scratch = ScratchDir::new("generate-model");
    let dir = scratch.path().to_str().unwrap();
    let output = dts(&["generate", "hf", dir, "1", "--model", "streams:3"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let json = std::fs::read_to_string(scratch.path().join("hf-rank000.json")).unwrap();
    assert!(
        json.contains("\"model\"") && json.contains("Streams"),
        "model not stamped: {json:?}"
    );
    // A stamped trace runs under its model without repeating the flag.
    let trace = scratch.path().join("hf-rank000.json");
    let output = dts(&["run", trace.to_str().unwrap(), "MAMR", "1.5"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(
        stdout(&output).contains("model              streams:3"),
        "unexpected output: {:?}",
        stdout(&output)
    );
}

#[test]
fn generate_rejects_malformed_execution_models() {
    let scratch = ScratchDir::new("generate-bad-model");
    let dir = scratch.path().to_str().unwrap();
    let output = dts(&["generate", "hf", dir, "1", "--model", "streams:0"]);
    assert_eq!(output.status.code(), Some(1));
    let message = stderr(&output);
    assert!(
        message.contains("invalid execution model") && !message.contains("panicked"),
        "unexpected diagnostic: {message:?}"
    );
    assert_eq!(std::fs::read_dir(scratch.path()).unwrap().count(), 0);
}
