//! End-to-end regression tests for the `dts` binary, driving the real
//! executable (`CARGO_BIN_EXE_dts`) the way a shell would.
//!
//! Pinned bugs:
//!
//! * `dts run <trace> <heuristic> <factor>` used to panic via the
//!   `MemSize::scale` assert on a negative, NaN or infinite factor instead
//!   of reporting an error;
//! * `dts generate <kernel> <dir> [n_ranks]` used to silently clamp
//!   `n_ranks` to the topology size — a request for 500 ranks quietly
//!   wrote 150 files and exited 0.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn dts(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dts"))
        .args(args)
        .output()
        .expect("the dts binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A scratch directory that cleans up after itself even on panic.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dts-cli-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Generates one HF trace into `dir` and returns the trace file's path.
fn generate_one_trace(dir: &Path) -> PathBuf {
    let dir_str = dir.to_str().expect("scratch path is UTF-8");
    let output = dts(&["generate", "hf", dir_str, "1"]);
    assert!(
        output.status.success(),
        "trace generation failed: {}",
        stderr(&output)
    );
    dir.join("hf-rank000.json")
}

#[test]
fn run_rejects_malformed_capacity_factors() {
    let scratch = ScratchDir::new("run-bad-factor");
    let trace = generate_one_trace(scratch.path());
    let trace = trace.to_str().unwrap();
    for factor in ["-1", "nan", "inf", "-inf"] {
        let output = dts(&["run", trace, "MAMR", factor]);
        // Regression: these used to abort with the `MemSize::scale` panic
        // (signal, no diagnostic); now they are ordinary errors.
        assert_eq!(
            output.status.code(),
            Some(1),
            "factor {factor} should exit 1, got {:?}",
            output.status
        );
        let message = stderr(&output);
        assert!(
            message.contains("invalid capacity factor"),
            "factor {factor}: unexpected diagnostic {message:?}"
        );
    }
}

#[test]
fn run_accepts_a_valid_factor() {
    let scratch = ScratchDir::new("run-ok");
    let trace = generate_one_trace(scratch.path());
    let output = dts(&["run", trace.to_str().unwrap(), "MAMR", "1.5"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("makespan"), "unexpected output: {text:?}");
}

#[test]
fn generate_rejects_more_ranks_than_the_largest_topology() {
    let scratch = ScratchDir::new("generate-too-many");
    let dir = scratch.path().to_str().unwrap();
    // Regression: 500 ranks used to silently clamp to the topology's 150
    // processes and exit 0 after writing fewer files than requested.
    let output = dts(&["generate", "ccsd", dir, "500"]);
    assert_eq!(output.status.code(), Some(1));
    let message = stderr(&output);
    assert!(
        message.contains("500 ranks requested") && message.contains("150"),
        "unexpected diagnostic: {message:?}"
    );
    // Nothing was generated.
    assert_eq!(std::fs::read_dir(scratch.path()).unwrap().count(), 0);
}

#[test]
fn generate_reports_how_many_ranks_were_written() {
    let scratch = ScratchDir::new("generate-count");
    let dir = scratch.path().to_str().unwrap();
    let output = dts(&["generate", "hf", dir, "2"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(
        stdout(&output).contains("generated 2 of 2 requested ranks"),
        "unexpected output: {:?}",
        stdout(&output)
    );
    assert_eq!(std::fs::read_dir(scratch.path()).unwrap().count(), 2);
}

#[test]
fn generate_rejects_zero_ranks() {
    let scratch = ScratchDir::new("generate-zero");
    let output = dts(&["generate", "hf", scratch.path().to_str().unwrap(), "0"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("at least 1"));
}

#[test]
fn run_rejects_malformed_execution_models() {
    let scratch = ScratchDir::new("run-bad-model");
    let trace = generate_one_trace(scratch.path());
    let trace = trace.to_str().unwrap();
    for spec in [
        "bogus",
        "streams",
        "streams:0",
        "streams:-2",
        "streams:two",
        "implicit:-0.5",
        "implicit:1.5",
        "implicit:NaN",
        "implicit:inf",
        "explicit:1",
        "duplex:2",
        "",
    ] {
        let output = dts(&["run", trace, "MAMR", "1.5", &format!("--model={spec}")]);
        assert_eq!(
            output.status.code(),
            Some(1),
            "model {spec:?} should exit 1, got {:?}",
            output.status
        );
        let message = stderr(&output);
        assert!(
            message.contains("error:") && message.contains("invalid execution model"),
            "model {spec:?}: unexpected diagnostic {message:?}"
        );
        assert!(
            !message.contains("panicked"),
            "model {spec:?} panicked: {message:?}"
        );
    }
    // A dangling `--model` with no value is also a clean error.
    let output = dts(&["run", trace, "MAMR", "1.5", "--model"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("--model expects a value"));
}

#[test]
fn run_echoes_the_execution_model() {
    let scratch = ScratchDir::new("run-model-echo");
    let trace = generate_one_trace(scratch.path());
    let trace = trace.to_str().unwrap();
    // The default explicit model is echoed too, so reports are
    // self-describing.
    let output = dts(&["run", trace, "MAMR", "1.5"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(
        stdout(&output).contains("model              explicit"),
        "unexpected output: {:?}",
        stdout(&output)
    );
    let output = dts(&["run", trace, "MAMR", "1.5", "--model", "duplex"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(
        stdout(&output).contains("model              duplex"),
        "unexpected output: {:?}",
        stdout(&output)
    );
}

#[test]
fn overlap_models_never_lengthen_a_run() {
    // The same trace, heuristic and capacity under each model: duplex and
    // streams cannot end later than explicit, and full implicit overlap
    // cannot end later than duplex.
    let scratch = ScratchDir::new("run-model-compare");
    let trace = generate_one_trace(scratch.path());
    let trace = trace.to_str().unwrap();
    let makespan_under = |spec: &str| -> u64 {
        let output = dts(&["run", trace, "LCMR", "1.5", "--model", spec]);
        assert!(output.status.success(), "stderr: {}", stderr(&output));
        let text = stdout(&output);
        let line = text
            .lines()
            .find(|l| l.starts_with("makespan"))
            .unwrap_or_else(|| panic!("no makespan line in {text:?}"));
        line.split_whitespace()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("unparsable makespan line {line:?}"))
    };
    let explicit = makespan_under("explicit");
    let duplex = makespan_under("duplex");
    let streams = makespan_under("streams:4");
    let implicit = makespan_under("implicit");
    assert!(duplex <= explicit, "duplex {duplex} vs explicit {explicit}");
    assert!(
        streams <= explicit,
        "streams {streams} vs explicit {explicit}"
    );
    assert!(implicit <= duplex, "implicit {implicit} vs duplex {duplex}");
}

#[test]
fn generate_stamps_the_model_into_trace_files() {
    let scratch = ScratchDir::new("generate-model");
    let dir = scratch.path().to_str().unwrap();
    let output = dts(&["generate", "hf", dir, "1", "--model", "streams:3"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let json = std::fs::read_to_string(scratch.path().join("hf-rank000.json")).unwrap();
    assert!(
        json.contains("\"model\"") && json.contains("Streams"),
        "model not stamped: {json:?}"
    );
    // A stamped trace runs under its model without repeating the flag.
    let trace = scratch.path().join("hf-rank000.json");
    let output = dts(&["run", trace.to_str().unwrap(), "MAMR", "1.5"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(
        stdout(&output).contains("model              streams:3"),
        "unexpected output: {:?}",
        stdout(&output)
    );
}

#[test]
fn generate_rejects_malformed_execution_models() {
    let scratch = ScratchDir::new("generate-bad-model");
    let dir = scratch.path().to_str().unwrap();
    let output = dts(&["generate", "hf", dir, "1", "--model", "streams:0"]);
    assert_eq!(output.status.code(), Some(1));
    let message = stderr(&output);
    assert!(
        message.contains("invalid execution model") && !message.contains("panicked"),
        "unexpected diagnostic: {message:?}"
    );
    assert_eq!(std::fs::read_dir(scratch.path()).unwrap().count(), 0);
}

const FAMILIES: [&str; 5] = [
    "md",
    "dense-la",
    "tie-heavy",
    "memory-cliff",
    "transfer-bound",
];

#[test]
fn usage_enumerates_every_generator_source() {
    let output = dts(&[]);
    assert_eq!(output.status.code(), Some(2));
    let usage = stderr(&output);
    for source in ["hf", "ccsd"].iter().chain(FAMILIES.iter()) {
        assert!(usage.contains(source), "usage does not list '{source}'");
    }
    for command in ["trace export", "trace import", "corpus"] {
        assert!(usage.contains(command), "usage does not list '{command}'");
    }
}

#[test]
fn generate_names_every_family_on_an_unknown_source() {
    let scratch = ScratchDir::new("generate-unknown-source");
    let output = dts(&["generate", "bogus", scratch.path().to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(1));
    let message = stderr(&output);
    for source in ["hf", "ccsd"].iter().chain(FAMILIES.iter()) {
        assert!(
            message.contains(source),
            "diagnostic {message:?} does not list '{source}'"
        );
    }
}

#[test]
fn generate_rejects_family_flags_on_chemistry_kernels() {
    let scratch = ScratchDir::new("generate-kernel-flags");
    let dir = scratch.path().to_str().unwrap();
    for flag in [["--tasks", "10"], ["--seed", "3"], ["--skew", "1.2"]] {
        let output = dts(&["generate", "hf", dir, "1", flag[0], flag[1]]);
        assert_eq!(
            output.status.code(),
            Some(1),
            "{} on hf should exit 1",
            flag[0]
        );
        let message = stderr(&output);
        assert!(
            message.contains(flag[0]) && message.contains("synthetic families"),
            "{}: unexpected diagnostic {message:?}",
            flag[0]
        );
    }
    assert_eq!(std::fs::read_dir(scratch.path()).unwrap().count(), 0);
}

#[test]
fn generate_rejects_invalid_family_parameters() {
    let scratch = ScratchDir::new("generate-bad-family-params");
    let dir = scratch.path().to_str().unwrap();
    // Skew only exists on dense-la.
    let output = dts(&["generate", "md", dir, "1", "--skew", "1.5"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("dense-la"),
        "unexpected diagnostic: {:?}",
        stderr(&output)
    );
    // Degenerate parameter values are clean errors, not panics.
    for args in [
        ["dense-la", "--skew", "0"],
        ["dense-la", "--skew", "nope"],
        ["md", "--tasks", "0"],
        ["md", "--tasks", "-5"],
        ["md", "--seed", "minus-one"],
    ] {
        let output = dts(&["generate", args[0], dir, "1", args[1], args[2]]);
        assert_eq!(
            output.status.code(),
            Some(1),
            "{args:?} should exit 1, got {:?}",
            output.status
        );
        assert!(
            !stderr(&output).contains("panicked"),
            "{args:?} panicked: {}",
            stderr(&output)
        );
    }
    assert_eq!(std::fs::read_dir(scratch.path()).unwrap().count(), 0);
}

#[test]
fn every_family_round_trips_through_export_import_under_every_model() {
    // generate → trace export → trace import must reproduce the generated
    // file byte for byte, and running the re-imported trace must produce
    // the identical schedule report.
    let scratch = ScratchDir::new("family-round-trip");
    for family in FAMILIES {
        for model in ["explicit", "duplex", "streams:4", "implicit"] {
            let dir = scratch
                .path()
                .join(format!("{family}-{}", model.replace(':', "_")));
            let dir_str = dir.to_str().unwrap();
            let output = dts(&[
                "generate", family, dir_str, "1", "--tasks", "40", "--seed", "5", "--model", model,
            ]);
            assert!(
                output.status.success(),
                "generate {family} --model {model}: {}",
                stderr(&output)
            );
            let generated = dir.join(format!("{family}-rank000.json"));
            let versioned = dir.join("versioned.json");
            let reimported = dir.join("reimported.json");
            let output = dts(&[
                "trace",
                "export",
                generated.to_str().unwrap(),
                versioned.to_str().unwrap(),
            ]);
            assert!(output.status.success(), "export: {}", stderr(&output));
            assert!(
                std::fs::read_to_string(&versioned)
                    .unwrap()
                    .contains("\"format\": \"dts-trace\""),
                "export did not write the versioned format"
            );
            let output = dts(&[
                "trace",
                "import",
                versioned.to_str().unwrap(),
                reimported.to_str().unwrap(),
            ]);
            assert!(output.status.success(), "import: {}", stderr(&output));
            assert_eq!(
                std::fs::read(&generated).unwrap(),
                std::fs::read(&reimported).unwrap(),
                "{family} --model {model}: round trip is not byte-identical"
            );
            let run_original = dts(&["run", generated.to_str().unwrap(), "LCMR", "1.5"]);
            let run_back = dts(&["run", reimported.to_str().unwrap(), "LCMR", "1.5"]);
            assert!(run_original.status.success(), "{}", stderr(&run_original));
            assert!(run_back.status.success(), "{}", stderr(&run_back));
            assert_eq!(
                stdout(&run_original),
                stdout(&run_back),
                "{family} --model {model}: schedules differ after the round trip"
            );
        }
    }
}

#[test]
fn trace_import_rejects_malformed_files_cleanly() {
    let scratch = ScratchDir::new("trace-import-malformed");
    let out = scratch.path().join("out.json");
    let cases: &[(&str, &str)] = &[
        ("unversioned", r#"{"kernel": "HF", "rank": 0, "tasks": []}"#),
        (
            "future-version",
            r#"{"format": "dts-trace", "version": 99, "kernel": "HF", "rank": 0, "tasks": []}"#,
        ),
        (
            "float-time",
            r#"{"format": "dts-trace", "version": 1, "kernel": "HF", "rank": 0, "tasks": [{"name": "t", "kind": "Contraction", "comm_micros": 1.5, "comp_micros": 1, "mem_bytes": 1}]}"#,
        ),
        (
            "negative-memory",
            r#"{"format": "dts-trace", "version": 1, "kernel": "HF", "rank": 0, "tasks": [{"name": "t", "kind": "Contraction", "comm_micros": 1, "comp_micros": 1, "mem_bytes": -4}]}"#,
        ),
        (
            "duplicate-ids",
            r#"{"format": "dts-trace", "version": 1, "kernel": "HF", "rank": 0, "tasks": [{"name": "t", "kind": "Contraction", "comm_micros": 1, "comp_micros": 1, "mem_bytes": 1}, {"name": "t", "kind": "Contraction", "comm_micros": 2, "comp_micros": 2, "mem_bytes": 2}]}"#,
        ),
        ("truncated", r#"{"format": "dts-trace", "ver"#),
    ];
    for (label, json) in cases {
        let path = scratch.path().join(format!("{label}.json"));
        std::fs::write(&path, json).unwrap();
        let output = dts(&[
            "trace",
            "import",
            path.to_str().unwrap(),
            out.to_str().unwrap(),
        ]);
        assert_eq!(
            output.status.code(),
            Some(1),
            "{label} should exit 1, got {:?}",
            output.status
        );
        let message = stderr(&output);
        assert!(
            message.contains("error:") && !message.contains("panicked"),
            "{label}: unexpected diagnostic {message:?}"
        );
        assert!(
            !out.exists(),
            "{label}: import wrote output despite failing"
        );
    }
}

#[test]
fn run_rejects_corrupted_trace_files_cleanly() {
    let scratch = ScratchDir::new("run-corrupted");
    let trace = generate_one_trace(scratch.path());
    let json = std::fs::read_to_string(&trace).unwrap();
    let corrupted = scratch.path().join("corrupted.json");
    std::fs::write(&corrupted, &json[..json.len() / 2]).unwrap();
    let output = dts(&["run", corrupted.to_str().unwrap(), "MAMR", "1.5"]);
    assert_eq!(output.status.code(), Some(1));
    let message = stderr(&output);
    assert!(
        message.contains("error:") && !message.contains("panicked"),
        "unexpected diagnostic: {message:?}"
    );
}

#[test]
fn corpus_golden_workflow_blesses_verifies_and_catches_tampering() {
    let scratch = ScratchDir::new("corpus-golden");
    let golden = scratch.path().join("golden.json");
    let golden_str = golden.to_str().unwrap();
    // Without a golden file the suite fails and names the fix.
    let output = dts(&["corpus", "--golden", golden_str]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("--update-golden"));
    // Blessing writes the file; a subsequent check is clean.
    let output = dts(&["corpus", "--update-golden", "--golden", golden_str]);
    assert!(output.status.success(), "bless: {}", stderr(&output));
    assert!(stdout(&output).contains("blessed"));
    let output = dts(&["corpus", "--golden", golden_str]);
    assert!(output.status.success(), "verify: {}", stderr(&output));
    assert!(stdout(&output).contains("corpus clean"));
    // Any tampering with a metric value fails the check and names the
    // sanctioned change path.
    let text = std::fs::read_to_string(&golden).unwrap();
    let tampered = text.replacen("\"makespan_us\": ", "\"makespan_us\": 1", 1);
    assert_ne!(text, tampered, "tamper had no effect");
    std::fs::write(&golden, tampered).unwrap();
    let output = dts(&["corpus", "--golden", golden_str]);
    assert_eq!(output.status.code(), Some(1));
    let message = stderr(&output);
    assert!(
        message.contains("drift") && message.contains("--update-golden"),
        "unexpected diagnostic: {message:?}"
    );
    // Stray positional arguments are a usage error.
    let output = dts(&["corpus", "extra"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("unexpected argument"));
}

/// Generates one bandwidth-linear transfer-bound trace into `dir` and
/// returns the trace file's path. With `--bandwidth` the generator's
/// communication times are linear in bytes (±2% jitter), so a regression
/// calibration must recover the line almost exactly.
fn generate_bandwidth_trace(dir: &Path) -> PathBuf {
    let dir_str = dir.to_str().expect("scratch path is UTF-8");
    let output = dts(&[
        "generate",
        "transfer-bound",
        dir_str,
        "1",
        "--tasks",
        "200",
        "--seed",
        "13",
        "--bandwidth",
        "1000",
    ]);
    assert!(
        output.status.success(),
        "trace generation failed: {}",
        stderr(&output)
    );
    dir.join("transfer-bound-rank000.json")
}

#[test]
fn calibrate_fits_a_bandwidth_trace_within_tolerance() {
    let scratch = ScratchDir::new("calibrate-fit");
    let trace = generate_bandwidth_trace(scratch.path());
    let model = scratch.path().join("model.json");
    let output = dts(&[
        "calibrate",
        trace.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "calibrate: {}", stderr(&output));
    let report = stdout(&output);
    assert!(report.contains("backend            regression"), "{report}");
    // The residual report's transfer fit must recover the generator's
    // bandwidth line well within the 5% (500 bp) acceptance bound.
    let err_bp: u64 = report
        .lines()
        .find(|l| l.starts_with("transfer fit"))
        .and_then(|l| l.split("mean_rel_err_bp=").nth(1))
        .and_then(|rest| rest.split_whitespace().next())
        .expect("transfer fit line with mean_rel_err_bp")
        .parse()
        .expect("mean_rel_err_bp is an integer");
    assert!(err_bp < 500, "transfer fit off by {err_bp} bp: {report}");
    assert!(model.exists(), "calibrate --out wrote no model file");
}

#[test]
fn calibrate_is_deterministic_and_its_model_reloads() {
    let scratch = ScratchDir::new("calibrate-determinism");
    let trace = generate_bandwidth_trace(scratch.path());
    let trace = trace.to_str().unwrap();
    let first = scratch.path().join("model1.json");
    let second = scratch.path().join("model2.json");
    for model in [&first, &second] {
        let output = dts(&["calibrate", trace, "--out", model.to_str().unwrap()]);
        assert!(output.status.success(), "calibrate: {}", stderr(&output));
    }
    // Same trace, same fit, byte-identical file — the round-trip
    // stability `dts request` relies on when hashing model specs.
    assert_eq!(
        std::fs::read(&first).unwrap(),
        std::fs::read(&second).unwrap(),
        "calibrate is not deterministic"
    );
    let output = dts(&[
        "run",
        trace,
        "OOMAMR",
        "--cost-model",
        first.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "run: {}", stderr(&output));
    assert!(
        stdout(&output).contains("cost model         regression"),
        "{}",
        stdout(&output)
    );
}

#[test]
fn run_under_a_fitted_cost_model_changes_the_schedule() {
    let scratch = ScratchDir::new("run-cost-model");
    let trace = generate_bandwidth_trace(scratch.path());
    let trace = trace.to_str().unwrap();
    let model = scratch.path().join("model.json");
    let output = dts(&["calibrate", trace, "--out", model.to_str().unwrap()]);
    assert!(output.status.success(), "calibrate: {}", stderr(&output));

    let native = dts(&["run", trace, "DOCPS"]);
    assert!(native.status.success(), "native: {}", stderr(&native));
    let modeled = dts(&[
        "run",
        trace,
        "DOCPS",
        "--cost-model",
        model.to_str().unwrap(),
    ]);
    assert!(modeled.status.success(), "modeled: {}", stderr(&modeled));

    let line = |out: &Output, key: &str| -> String {
        stdout(out)
            .lines()
            .find(|l| l.starts_with(key))
            .unwrap_or_default()
            .to_string()
    };
    assert_eq!(line(&native, "cost model"), "cost model         analytic");
    assert_eq!(
        line(&modeled, "cost model"),
        "cost model         regression"
    );
    // The ±2% calibration residue perturbs the materialized durations, so
    // the same heuristic reaches a different makespan — the model really
    // steers the schedule rather than being carried as metadata.
    assert_ne!(
        line(&native, "makespan"),
        line(&modeled, "makespan"),
        "the fitted model did not change the schedule"
    );
}

#[test]
fn run_accepts_the_analytic_cost_model_keyword() {
    let scratch = ScratchDir::new("run-analytic-keyword");
    let trace = generate_bandwidth_trace(scratch.path());
    let trace = trace.to_str().unwrap();
    let native = dts(&["run", trace, "OOMAMR"]);
    assert!(native.status.success(), "native: {}", stderr(&native));
    let forced = dts(&["run", trace, "OOMAMR", "--cost-model", "analytic"]);
    assert!(forced.status.success(), "forced: {}", stderr(&forced));
    // `analytic` is the normalization keyword: forcing it on a trace that
    // carries no model is the identity, down to the output bytes.
    assert_eq!(stdout(&native), stdout(&forced));
    assert!(stdout(&native).contains("cost model         analytic"));
}

#[test]
fn run_rejects_a_missing_cost_model_file() {
    let scratch = ScratchDir::new("run-missing-model");
    let trace = generate_one_trace(scratch.path());
    let output = dts(&[
        "run",
        trace.to_str().unwrap(),
        "OOMAMR",
        "--cost-model",
        "/no/such/model.json",
    ]);
    assert_eq!(output.status.code(), Some(1));
    let message = stderr(&output);
    assert!(
        message.contains("/no/such/model.json"),
        "diagnostic does not name the file: {message:?}"
    );
}
