//! Dynamic selection heuristics (Section 4.2 of the paper).
//!
//! Whenever the communication link becomes idle, the next task is chosen
//! among the not-yet-scheduled tasks that (a) fit in the currently available
//! memory and (b) induce the minimum idle time on the processing unit; the
//! selection criterion then breaks the tie. If no task fits, the link is
//! left idle until the next memory release. Communications and computations
//! happen in the same order.

use crate::engine::{select_candidate, EngineState};
use dts_core::index::CandidateIndex;
use dts_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Tie-break criterion applied after the minimum-CPU-idle filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectionCriterion {
    /// `LCMR`: pick the task with the largest communication time.
    LargestCommunication,
    /// `SCMR`: pick the task with the smallest communication time.
    SmallestCommunication,
    /// `MAMR`: pick the task with the largest computation/communication
    /// ratio.
    MaximumAcceleration,
}

impl SelectionCriterion {
    /// Chooses one task among the filtered candidates. Ties are broken by
    /// task id so the heuristics are deterministic.
    pub fn choose(self, instance: &Instance, candidates: &[TaskId]) -> Option<TaskId> {
        match self {
            SelectionCriterion::LargestCommunication => candidates
                .iter()
                .copied()
                .max_by_key(|id| (instance.task(*id).comm_time, std::cmp::Reverse(id.index()))),
            SelectionCriterion::SmallestCommunication => candidates
                .iter()
                .copied()
                .min_by_key(|id| (instance.task(*id).comm_time, id.index())),
            SelectionCriterion::MaximumAcceleration => candidates.iter().copied().max_by(|a, b| {
                let ra = instance.task(*a).acceleration_ratio();
                let rb = instance.task(*b).acceleration_ratio();
                ra.partial_cmp(&rb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.index().cmp(&a.index()))
            }),
        }
    }
}

/// Runs a dynamic heuristic to completion and returns the schedule, under
/// the execution model the instance carries ([`ExecutionModel::Explicit`]
/// unless one was attached).
///
/// # Errors
///
/// Returns [`CoreError::TaskExceedsCapacity`] if a task can never fit in the
/// instance's memory (possible only for instances that bypassed
/// [`Instance::new`] validation, e.g. deserialized ones) — such a task
/// would otherwise stall the selection loop forever.
pub fn run_dynamic(instance: &Instance, criterion: SelectionCriterion) -> Result<Schedule> {
    run_dynamic_with(instance, criterion, instance.model())
}

/// [`run_dynamic`] under an explicit [`ExecutionModel`] (overriding
/// whatever the instance carries). The selection rule is shared by all
/// models — tasks are filtered by fit and minimum induced CPU idle, then
/// tie-broken by `criterion` — while the commit timing is model-specific
/// (see [`EngineState::commit`]).
pub fn run_dynamic_with(
    instance: &Instance,
    criterion: SelectionCriterion,
    model: ExecutionModel,
) -> Result<Schedule> {
    model.validate()?;
    instance.check_tasks_fit()?;
    let mut state = EngineState::with_model(instance, model);
    // Remaining tasks, indexed by memory footprint: each decision is
    // resolved with O(log n) threshold queries instead of scanning every
    // remaining task (see `select_candidate`). Only MAMR asks ratio
    // queries, so the other criteria skip the ratio priority tree.
    let mut index = match criterion {
        SelectionCriterion::MaximumAcceleration => CandidateIndex::new(instance),
        _ => CandidateIndex::comm_only(instance),
    };
    let mut now = Time::ZERO;

    while !index.is_empty() {
        now = now.max(state.link_free);
        state.release_up_to(now);
        match select_candidate(instance, &state, &index, now, criterion) {
            Some(chosen) => {
                state.commit(instance, chosen, now);
                index.remove(chosen);
            }
            None => {
                // No remaining task fits: leave the link idle until the next
                // memory release. A release always exists here, otherwise
                // the memory would be empty and every task would fit
                // (oversized tasks were rejected above).
                now = state.next_release_after(now).ok_or_else(|| {
                    CoreError::Internal("no task fits yet no memory is held".into())
                })?;
            }
        }
    }
    Ok(state.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::feasibility::is_feasible;
    use dts_core::instances::{random_instance_decoupled_memory, table4};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn comm_order_names(inst: &Instance, sched: &Schedule) -> Vec<String> {
        sched
            .comm_order()
            .iter()
            .map(|id| inst.task(*id).name.clone())
            .collect()
    }

    /// Fig. 5 of the paper: the three dynamic heuristics on Table 4 with a
    /// memory capacity of 6.
    #[test]
    fn fig5_lcmr_schedule() {
        let inst = table4();
        let sched = run_dynamic(&inst, SelectionCriterion::LargestCommunication).unwrap();
        assert_eq!(comm_order_names(&inst, &sched), vec!["B", "D", "A", "C"]);
        assert_eq!(sched.makespan(&inst), Time::units_int(23));
        assert!(is_feasible(&inst, &sched));
    }

    #[test]
    fn fig5_scmr_schedule() {
        let inst = table4();
        let sched = run_dynamic(&inst, SelectionCriterion::SmallestCommunication).unwrap();
        assert_eq!(comm_order_names(&inst, &sched), vec!["B", "A", "C", "D"]);
        assert_eq!(sched.makespan(&inst), Time::units_int(25));
        assert!(is_feasible(&inst, &sched));
    }

    #[test]
    fn fig5_mamr_schedule() {
        let inst = table4();
        let sched = run_dynamic(&inst, SelectionCriterion::MaximumAcceleration).unwrap();
        assert_eq!(comm_order_names(&inst, &sched), vec!["B", "C", "A", "D"]);
        assert_eq!(sched.makespan(&inst), Time::units_int(24));
        assert!(is_feasible(&inst, &sched));
    }

    #[test]
    fn fig5_lcmr_detailed_timeline() {
        // Cross-check the exact event times read off Fig. 5 (LCMR row):
        // B comm [0,1) comp [1,7); D comm [1,6) comp [7,8);
        // A comm [8,11) comp [11,13); C comm [13,17) comp [17,23).
        let inst = table4();
        let sched = run_dynamic(&inst, SelectionCriterion::LargestCommunication).unwrap();
        let by_name = |n: &str| {
            let (id, _) = inst.iter().find(|(_, t)| t.name == n).unwrap();
            *sched.entry(id).unwrap()
        };
        assert_eq!(by_name("B").comm_start, Time::ZERO);
        assert_eq!(by_name("D").comm_start, Time::units_int(1));
        assert_eq!(by_name("D").comp_start, Time::units_int(7));
        assert_eq!(by_name("A").comm_start, Time::units_int(8));
        assert_eq!(by_name("C").comm_start, Time::units_int(13));
        assert_eq!(by_name("C").comp_start, Time::units_int(17));
    }

    #[test]
    fn dynamic_schedules_are_feasible_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..30 {
            let inst = random_instance_decoupled_memory(&mut rng, 20, 1.2);
            for criterion in [
                SelectionCriterion::LargestCommunication,
                SelectionCriterion::SmallestCommunication,
                SelectionCriterion::MaximumAcceleration,
            ] {
                let sched = run_dynamic(&inst, criterion).unwrap();
                assert_eq!(sched.len(), inst.len());
                assert!(is_feasible(&inst, &sched), "{criterion:?}");
                assert!(sched.is_permutation_schedule());
            }
        }
    }

    #[test]
    fn criteria_choose_expected_tasks() {
        let inst = table4();
        let all = inst.task_ids();
        assert_eq!(
            SelectionCriterion::LargestCommunication.choose(&inst, &all),
            Some(TaskId(3)) // D: comm 5
        );
        assert_eq!(
            SelectionCriterion::SmallestCommunication.choose(&inst, &all),
            Some(TaskId(1)) // B: comm 1
        );
        assert_eq!(
            SelectionCriterion::MaximumAcceleration.choose(&inst, &all),
            Some(TaskId(1)) // B: ratio 6
        );
        assert_eq!(
            SelectionCriterion::LargestCommunication.choose(&inst, &[]),
            None
        );
    }
}
