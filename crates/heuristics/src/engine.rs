//! Shared event-driven machinery for the dynamic and corrected heuristics.
//!
//! The engine models the runtime state of problem `DT` while a schedule is
//! being constructed task by task: availability of the communication link
//! and of the processing unit, and the set of *active* tasks (transfer
//! started, computation not yet finished) that currently hold memory.

use dts_core::prelude::*;

/// Mutable scheduling state used by the decision-driven heuristics.
#[derive(Debug, Clone)]
pub struct EngineState {
    /// Instant at which the communication link becomes free.
    pub link_free: Time,
    /// Instant at which the processing unit becomes free.
    pub cpu_free: Time,
    /// Active tasks as `(computation end, memory held)`, kept sorted by
    /// computation end (computations run one at a time, so pushes are already
    /// in non-decreasing order).
    active: Vec<(Time, MemSize)>,
    /// Capacity of the local memory.
    capacity: MemSize,
    /// Schedule built so far.
    pub schedule: Schedule,
}

impl EngineState {
    /// Creates the initial state for an instance.
    pub fn new(instance: &Instance) -> Self {
        EngineState {
            link_free: Time::ZERO,
            cpu_free: Time::ZERO,
            active: Vec::new(),
            capacity: instance.capacity(),
            schedule: Schedule::with_capacity(instance.len()),
        }
    }

    /// Memory still held at instant `t`: active tasks whose computation ends
    /// strictly after `t` (a release at exactly `t` is already effective,
    /// matching the schedules of the paper's figures).
    pub fn held_at(&self, t: Time) -> MemSize {
        self.active
            .iter()
            .filter(|(end, _)| *end > t)
            .map(|(_, mem)| *mem)
            .sum()
    }

    /// `true` iff `task` fits in the memory remaining at instant `t`.
    pub fn fits_at(&self, task: &Task, t: Time) -> bool {
        self.held_at(t).saturating_add(task.mem) <= self.capacity
    }

    /// Idle time that starting `task`'s transfer at instant `t` would induce
    /// on the processing unit: the gap between the moment the unit becomes
    /// free and the moment this task's data would be ready.
    pub fn induced_cpu_idle(&self, task: &Task, t: Time) -> Time {
        (t + task.comm_time).saturating_sub(self.cpu_free)
    }

    /// The next instant after `t` at which some active task releases its
    /// memory, if any. Used to advance time when nothing fits.
    pub fn next_release_after(&self, t: Time) -> Option<Time> {
        self.active
            .iter()
            .map(|(end, _)| *end)
            .filter(|end| *end > t)
            .min()
    }

    /// Commits `task` (with id `id`) to start its transfer at instant `t`.
    /// Returns the completion time of its computation.
    ///
    /// # Panics
    /// Panics in debug builds if the transfer would overlap the link busy
    /// period or overflow the memory — callers must only commit decisions
    /// validated with [`EngineState::fits_at`].
    pub fn commit(&mut self, instance: &Instance, id: TaskId, t: Time) -> Time {
        let task = instance.task(id);
        debug_assert!(t >= self.link_free, "transfer would overlap the link");
        debug_assert!(self.fits_at(task, t), "task does not fit in memory");
        let comm_start = t;
        let comm_end = comm_start + task.comm_time;
        let comp_start = comm_end.max(self.cpu_free);
        let comp_end = comp_start + task.comp_time;
        self.link_free = comm_end;
        self.cpu_free = comp_end;
        self.active.push((comp_end, task.mem));
        self.schedule.push(ScheduleEntry {
            task: id,
            comm_start,
            comp_start,
        });
        comp_end
    }
}

/// Among `candidates` (tasks that fit in memory at instant `t`), keeps only
/// those inducing the minimum idle time on the processing unit — the common
/// pre-filter of every dynamic selection rule of the paper.
pub fn filter_minimum_cpu_idle(
    instance: &Instance,
    state: &EngineState,
    candidates: &[TaskId],
    t: Time,
) -> Vec<TaskId> {
    let min_idle = candidates
        .iter()
        .map(|&id| state.induced_cpu_idle(instance.task(id), t))
        .min();
    match min_idle {
        None => Vec::new(),
        Some(min) => candidates
            .iter()
            .copied()
            .filter(|&id| state.induced_cpu_idle(instance.task(id), t) == min)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::instances::table4;

    #[test]
    fn held_memory_tracks_commits_and_releases() {
        let inst = table4();
        let mut state = EngineState::new(&inst);
        assert_eq!(state.held_at(Time::ZERO), MemSize::ZERO);
        // Commit B (comm 1, comp 6, mem 1) at t = 0: active until 7.
        let end = state.commit(&inst, TaskId(1), Time::ZERO);
        assert_eq!(end, Time::units_int(7));
        assert_eq!(state.held_at(Time::units_int(3)), MemSize::from_bytes(1));
        assert_eq!(state.held_at(Time::units_int(7)), MemSize::ZERO);
        assert_eq!(state.link_free, Time::units_int(1));
        assert_eq!(state.cpu_free, Time::units_int(7));
        assert_eq!(
            state.next_release_after(Time::ZERO),
            Some(Time::units_int(7))
        );
        assert_eq!(state.next_release_after(Time::units_int(7)), None);
    }

    #[test]
    fn fits_at_respects_capacity() {
        let inst = table4(); // capacity 6
        let mut state = EngineState::new(&inst);
        // B holds mem 1 until t = 7, then D holds mem 5 until t = 8.
        state.commit(&inst, TaskId(1), Time::ZERO);
        state.commit(&inst, TaskId(3), Time::units_int(1));
        // At t = 6 nothing else fits (held 6).
        assert!(!state.fits_at(inst.task(TaskId(0)), Time::units_int(6)));
        // At t = 8 both releases happened.
        assert!(state.fits_at(inst.task(TaskId(2)), Time::units_int(8)));
    }

    #[test]
    fn induced_idle_measures_cpu_gap() {
        let inst = table4();
        let mut state = EngineState::new(&inst);
        // B first: cpu_free = 7.
        state.commit(&inst, TaskId(1), Time::ZERO);
        // Starting A (comm 3) at t = 1 ends its transfer at 4 < 7: no idle.
        assert_eq!(
            state.induced_cpu_idle(inst.task(TaskId(0)), Time::units_int(1)),
            Time::ZERO
        );
        // Starting A at t = 8 ends at 11: 4 units of CPU idle.
        assert_eq!(
            state.induced_cpu_idle(inst.task(TaskId(0)), Time::units_int(8)),
            Time::units_int(4)
        );
    }

    #[test]
    fn min_idle_filter_keeps_ties() {
        let inst = table4();
        let mut state = EngineState::new(&inst);
        state.commit(&inst, TaskId(1), Time::ZERO); // cpu busy until 7
        let candidates = vec![TaskId(0), TaskId(2), TaskId(3)];
        // At t = 1 every remaining transfer finishes before 7: all tie at 0.
        let kept = filter_minimum_cpu_idle(&inst, &state, &candidates, Time::units_int(1));
        assert_eq!(kept, candidates);
        // At t = 5, A (comm 3) ends at 8 (idle 1), C (comm 4) at 9 (idle 2),
        // D (comm 5) at 10 (idle 3): only A is kept.
        let kept = filter_minimum_cpu_idle(&inst, &state, &candidates, Time::units_int(5));
        assert_eq!(kept, vec![TaskId(0)]);
        assert!(filter_minimum_cpu_idle(&inst, &state, &[], Time::ZERO).is_empty());
    }
}
