//! Shared event-driven machinery for the dynamic and corrected heuristics.
//!
//! The engine models the runtime state of problem `DT` while a schedule is
//! being constructed task by task: availability of the communication link
//! and of the processing unit, and the set of *active* tasks (transfer
//! started, computation not yet finished) that currently hold memory.
//!
//! # Complexity
//!
//! The engine maintains a running total of the memory held
//! (`EngineState::held`) next to a queue of pending releases ordered by
//! computation end. Callers advance the engine with
//! [`EngineState::release_up_to`] as their clock moves forward; after that,
//! [`EngineState::held_at`] at the current instant is O(1),
//! [`EngineState::available`] is O(1) and
//! [`EngineState::next_release_after`] is O(log n).
//!
//! The decision loops of [`run_dynamic`](crate::dynamic::run_dynamic) and
//! [`run_corrected_with_order`](crate::corrected::run_corrected_with_order)
//! do not probe candidates one by one: [`select_candidate`] resolves each
//! decision with O(log n) queries against a
//! [`CandidateIndex`] of the remaining
//! tasks, so a whole run costs O(n log n) instead of the O(n²) of scanning
//! every remaining task per decision. (The ratio query behind MAMR/OOMAMR
//! is output-sensitive — O(log n) per decision when communication times
//! are quantized, as in the paper's traces; see
//! [`CandidateIndex::best_ratio_candidate_within`] for the general
//! bound.) [`filter_minimum_cpu_idle`] remains
//! the executable specification of the selection rule: the
//! `select_candidate_matches_the_specification_filter` test below replays
//! whole runs comparing the two decision for decision, and the
//! `engine_equivalence` integration suite pins the resulting schedules
//! byte-identical to the seed engine.

use crate::SelectionCriterion;
use dts_core::index::CandidateIndex;
use dts_core::prelude::*;
use std::collections::VecDeque;

/// Mutable scheduling state used by the decision-driven heuristics.
#[derive(Debug, Clone)]
pub struct EngineState {
    /// Earliest instant at which the next transfer may be *issued*. Under
    /// the explicit model this is when the single link frees up; under the
    /// multi-channel models it accounts for the channel the next transfer
    /// would use (transfers are issued in decision order, so it is also at
    /// least the last issue instant); under the implicit model it is the
    /// end of the running fused phase.
    pub link_free: Time,
    /// Instant at which the processing unit becomes free.
    pub cpu_free: Time,
    /// Pending memory releases as `(computation end, memory held)`, ordered
    /// by computation end (computations run one at a time, so pushes are
    /// already in non-decreasing order — fused phases likewise end in
    /// issue order). Entries released by [`EngineState::release_up_to`]
    /// are popped from the front.
    releases: VecDeque<(Time, MemSize)>,
    /// Sum of the memory held by the queued releases.
    held: MemSize,
    /// Every release at or before this instant has been pruned from the
    /// queue; memory queries must not go back before it.
    released_up_to: Time,
    /// Capacity of the local memory.
    capacity: MemSize,
    /// Execution model the engine commits under.
    model: ExecutionModel,
    /// Per-channel free instants of the multi-channel models (empty for
    /// explicit/implicit, which track the medium through `link_free`).
    channels: Vec<Time>,
    /// Round-robin cursor of the duplex model: the direction the next
    /// transfer uses.
    next_duplex: usize,
    /// Schedule built so far.
    pub schedule: Schedule,
}

impl EngineState {
    /// Creates the initial state for an instance, honoring the execution
    /// model the instance carries ([`ExecutionModel::Explicit`] unless one
    /// was attached).
    pub fn new(instance: &Instance) -> Self {
        Self::with_model(instance, instance.model())
    }

    /// Creates the initial state for an instance under an explicit
    /// execution model. Callers must validate the model first
    /// ([`ExecutionModel::validate`]); the public heuristic entry points
    /// do.
    pub fn with_model(instance: &Instance, model: ExecutionModel) -> Self {
        debug_assert!(model.validate().is_ok(), "unvalidated execution model");
        let channels = match model {
            ExecutionModel::Duplex | ExecutionModel::Streams { .. } => {
                vec![Time::ZERO; model.channel_count()]
            }
            _ => Vec::new(),
        };
        EngineState {
            link_free: Time::ZERO,
            cpu_free: Time::ZERO,
            releases: VecDeque::new(),
            held: MemSize::ZERO,
            released_up_to: Time::ZERO,
            capacity: instance.capacity(),
            model,
            channels,
            next_duplex: 0,
            schedule: Schedule::with_capacity(instance.len()),
        }
    }

    /// The execution model the engine commits under.
    #[inline]
    pub fn model(&self) -> ExecutionModel {
        self.model
    }

    /// Drops every pending release happening at or before `t` and folds it
    /// into the running `held` total. The heuristic loops call this once per
    /// decision instant, which makes every subsequent [`held_at`] probe at
    /// `t` O(1).
    ///
    /// [`held_at`]: EngineState::held_at
    pub fn release_up_to(&mut self, t: Time) {
        while let Some(&(end, mem)) = self.releases.front() {
            if end <= t {
                self.held = self.held.saturating_sub(mem);
                self.releases.pop_front();
            } else {
                break;
            }
        }
        self.released_up_to = self.released_up_to.max(t);
    }

    /// Memory still held at instant `t`: active tasks whose computation ends
    /// strictly after `t` (a release at exactly `t` is already effective,
    /// matching the schedules of the paper's figures).
    ///
    /// Queries at the pruning point cost O(1); queries further in the future
    /// scan only the releases in between.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes an instant already passed to
    /// [`release_up_to`](EngineState::release_up_to) — releases before that
    /// point have been discarded, so the state cannot answer for the past
    /// and silently under-reporting would let infeasible commits through.
    pub fn held_at(&self, t: Time) -> MemSize {
        assert!(
            t >= self.released_up_to,
            "memory query at {t} precedes releases already pruned at {}",
            self.released_up_to
        );
        let released: MemSize = self
            .releases
            .iter()
            .take_while(|(end, _)| *end <= t)
            .map(|(_, mem)| *mem)
            .sum();
        self.held.saturating_sub(released)
    }

    /// Memory still free at the pruning instant (the last instant passed to
    /// [`release_up_to`](EngineState::release_up_to)): the capacity minus
    /// the running held-memory total, in O(1). A task fits at that instant
    /// iff its requirement is at most this value, which is what lets the
    /// selection work as threshold queries on a [`CandidateIndex`].
    #[inline]
    pub fn available(&self) -> MemSize {
        MemSize::from_bytes(self.capacity.bytes().saturating_sub(self.held.bytes()))
    }

    /// `true` iff `task` fits in the memory remaining at instant `t`. An
    /// exact sum that overflows `u64` cannot fit under any capacity, so it
    /// counts as not fitting — the same convention as
    /// [`simulate_sequence`], which
    /// also keeps the engine's held-memory counter an exact sum.
    pub fn fits_at(&self, task: &Task, t: Time) -> bool {
        self.held_at(t)
            .bytes()
            .checked_add(task.mem.bytes())
            .is_some_and(|total| total <= self.capacity.bytes())
    }

    /// Idle time that starting `task`'s transfer at instant `t` would induce
    /// on the processing unit: the gap between the moment the unit becomes
    /// free and the moment this task's data would be ready.
    ///
    /// Exact under the explicit, duplex and streams models — a transfer
    /// committed at `t` always finds its channel free (that is what
    /// [`link_free`](EngineState::link_free) guarantees), so the data is
    /// ready at `t + comm`. Under the implicit model the selection rule
    /// deliberately keeps this communication-time proxy (the paper's
    /// heuristics are defined on task transfer times): it is exact at
    /// overlap efficiency 0 and keeps every criterion distinguishable and
    /// O(log n) via the [`CandidateIndex`] threshold queries.
    pub fn induced_cpu_idle(&self, task: &Task, t: Time) -> Time {
        (t + task.comm_time).saturating_sub(self.cpu_free)
    }

    /// The next instant after `t` at which some active task releases its
    /// memory, if any. Used to advance time when nothing fits. O(log n) by
    /// binary search on the sorted release queue.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes an instant already passed to
    /// [`release_up_to`](EngineState::release_up_to), for the same reason as
    /// [`held_at`](EngineState::held_at): pruned releases cannot be
    /// reported, and silently skipping them would make callers jump past
    /// real release instants.
    pub fn next_release_after(&self, t: Time) -> Option<Time> {
        assert!(
            t >= self.released_up_to,
            "release query at {t} precedes releases already pruned at {}",
            self.released_up_to
        );
        let idx = self.releases.partition_point(|(end, _)| *end <= t);
        self.releases.get(idx).map(|(end, _)| *end)
    }

    /// Commits `task` (with id `id`) to start its transfer at instant `t`.
    /// Returns the completion time of its computation.
    ///
    /// Model-aware: under the explicit model the single link is busy until
    /// the transfer ends (the paper's semantics, byte-identical to the
    /// seed engine); under duplex/streams only the chosen channel is, and
    /// [`link_free`](EngineState::link_free) advances to when the *next*
    /// transfer could be issued; under the implicit model the task's
    /// transfer and computation fuse into one phase holding link and CPU.
    ///
    /// # Panics
    /// Panics in debug builds if the transfer would overlap the link busy
    /// period or overflow the memory — callers must only commit decisions
    /// validated with [`EngineState::fits_at`].
    pub fn commit(&mut self, instance: &Instance, id: TaskId, t: Time) -> Time {
        let task = instance.task(id);
        debug_assert!(t >= self.link_free, "transfer would overlap the link");
        debug_assert!(self.fits_at(task, t), "task does not fit in memory");
        self.release_up_to(t);
        let comm_start = t;
        let (comp_start, comp_end) = match self.model {
            ExecutionModel::Explicit => {
                let comm_end = comm_start + task.comm_time;
                let comp_start = comm_end.max(self.cpu_free);
                let comp_end = comp_start + task.comp_time;
                self.link_free = comm_end;
                self.cpu_free = comp_end;
                (comp_start, comp_end)
            }
            ExecutionModel::Duplex => {
                let comm_end = comm_start + task.comm_time;
                debug_assert!(
                    self.channels[self.next_duplex] <= t,
                    "chosen direction is busy"
                );
                self.channels[self.next_duplex] = comm_end;
                self.next_duplex = (self.next_duplex + 1) % self.channels.len();
                // Transfers are issued in decision order, so the next one
                // starts no earlier than this one and no earlier than its
                // (round-robin) direction frees up.
                self.link_free = comm_start.max(self.channels[self.next_duplex]);
                let comp_start = comm_end.max(self.cpu_free);
                let comp_end = comp_start + task.comp_time;
                self.cpu_free = comp_end;
                (comp_start, comp_end)
            }
            ExecutionModel::Streams { .. } => {
                let comm_end = comm_start + task.comm_time;
                let channel = Self::earliest_free_channel(&self.channels);
                debug_assert!(self.channels[channel] <= t, "chosen stream is busy");
                self.channels[channel] = comm_end;
                let earliest = self.channels[Self::earliest_free_channel(&self.channels)];
                self.link_free = comm_start.max(earliest);
                let comp_start = comm_end.max(self.cpu_free);
                let comp_end = comp_start + task.comp_time;
                self.cpu_free = comp_end;
                (comp_start, comp_end)
            }
            ExecutionModel::Implicit { .. } => {
                let end = comm_start + self.model.fused_duration(task.comm_time, task.comp_time);
                self.link_free = end;
                self.cpu_free = end;
                // fused >= comp, so the computation tail starts within the
                // phase.
                (end - task.comp_time, end)
            }
        };
        self.releases.push_back((comp_end, task.mem));
        self.held = self.held.saturating_add(task.mem);
        self.schedule.push(ScheduleEntry {
            task: id,
            comm_start,
            comp_start,
        });
        comp_end
    }

    /// Index of the earliest-free channel, ties broken toward the lowest
    /// index (the deterministic stream-assignment rule).
    fn earliest_free_channel(channels: &[Time]) -> usize {
        let mut best = 0;
        for (i, &free) in channels.iter().enumerate().skip(1) {
            if free < channels[best] {
                best = i;
            }
        }
        best
    }
}

/// Among `candidates` (tasks that fit in memory at instant `t`), keeps only
/// those inducing the minimum idle time on the processing unit — the common
/// pre-filter of every dynamic selection rule of the paper.
pub fn filter_minimum_cpu_idle(
    instance: &Instance,
    state: &EngineState,
    candidates: &[TaskId],
    t: Time,
) -> Vec<TaskId> {
    let min_idle = candidates
        .iter()
        .map(|&id| state.induced_cpu_idle(instance.task(id), t))
        .min();
    match min_idle {
        None => Vec::new(),
        Some(min) => candidates
            .iter()
            .copied()
            .filter(|&id| state.induced_cpu_idle(instance.task(id), t) == min)
            .collect(),
    }
}

/// Resolves one dynamic selection decision against a [`CandidateIndex`]:
/// among the remaining tasks that fit in the free memory at instant `now`,
/// keep those inducing the minimum idle time on the processing unit, then
/// apply `criterion` — the exact rule of
/// `criterion.choose(filter_minimum_cpu_idle(fitting))`, without
/// materializing either set.
///
/// Returns `None` iff no remaining task fits, in which case callers wait
/// for the next memory release. The caller must have called
/// [`EngineState::release_up_to`]`(now)` beforehand so that
/// [`EngineState::available`] reflects the decision instant.
///
/// # How the index queries map onto the paper's rule
///
/// A fitting task induces zero CPU idle time iff its communication time is
/// at most `slack = cpu_free − now`; otherwise the induced idle time grows
/// strictly with the communication time. Hence, with `cmin` the smallest
/// communication time among fitting tasks:
///
/// * if `cmin <= slack`, the minimum-idle candidates are the fitting tasks
///   with communication time at most `slack`;
/// * otherwise they are the fitting tasks with communication time exactly
///   `cmin`, and restricting a `<= cmin` query to fitting tasks yields the
///   same set (no fitting task has a smaller communication time).
///
/// Each criterion then reduces to one ordered query on that set, with ties
/// broken by smallest id exactly as [`SelectionCriterion::choose`] does.
pub fn select_candidate(
    instance: &Instance,
    state: &EngineState,
    index: &CandidateIndex,
    now: Time,
    criterion: SelectionCriterion,
) -> Option<TaskId> {
    let free = state.available();
    let cheapest = index.min_comm_candidate(free)?;
    let cmin = instance.task(cheapest).comm_time;
    let slack = state.cpu_free.saturating_sub(now);
    if cmin > slack {
        // Every fitting task induces CPU idle time; the candidates are the
        // fitting tasks with the smallest communication time `cmin`. A
        // `<= cmin` query would return the same task — no fitting task has
        // a shorter communication time — but the exact-`cmin` form lets the
        // index skip the shorter-communication positions entirely instead
        // of walking their (never-fitting, often high-ratio) tasks as
        // search blockers.
        return match criterion {
            // All candidates share the same communication time, so both
            // communication criteria pick the smallest id among them —
            // which is `cheapest` by the `(comm, id)` index order.
            SelectionCriterion::LargestCommunication
            | SelectionCriterion::SmallestCommunication => Some(cheapest),
            SelectionCriterion::MaximumAcceleration => index.best_ratio_candidate_at(free, cmin),
        };
    }
    // Some fitting task induces no idle time: the candidates are the fitting
    // tasks with communication time at most `slack`.
    match criterion {
        SelectionCriterion::LargestCommunication => index.max_comm_candidate_within(free, slack),
        SelectionCriterion::SmallestCommunication => Some(cheapest),
        SelectionCriterion::MaximumAcceleration => index.best_ratio_candidate_within(free, slack),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::instances::{random_instance_decoupled_memory, table4};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Replays whole scheduling runs, comparing `select_candidate` against
    /// the executable specification it replaces — `criterion.choose` over
    /// `filter_minimum_cpu_idle` over the fitting remaining tasks — at
    /// every single decision instant.
    #[test]
    fn select_candidate_matches_the_specification_filter() {
        let mut rng = StdRng::seed_from_u64(31);
        let criteria = [
            SelectionCriterion::LargestCommunication,
            SelectionCriterion::SmallestCommunication,
            SelectionCriterion::MaximumAcceleration,
        ];
        for round in 0..15 {
            let inst = random_instance_decoupled_memory(&mut rng, 14, 1.2);
            for criterion in criteria {
                let mut state = EngineState::new(&inst);
                let mut index = CandidateIndex::new(&inst);
                let mut remaining: Vec<TaskId> = inst.task_ids();
                let mut now = Time::ZERO;
                while !remaining.is_empty() {
                    now = now.max(state.link_free);
                    state.release_up_to(now);
                    let fitting: Vec<TaskId> = remaining
                        .iter()
                        .copied()
                        .filter(|id| state.fits_at(inst.task(*id), now))
                        .collect();
                    let spec = criterion.choose(
                        &inst,
                        &filter_minimum_cpu_idle(&inst, &state, &fitting, now),
                    );
                    let fast = select_candidate(&inst, &state, &index, now, criterion);
                    assert_eq!(fast, spec, "round {round}, {criterion:?}, t = {now}");
                    match fast {
                        Some(chosen) => {
                            state.commit(&inst, chosen, now);
                            index.remove(chosen);
                            remaining.retain(|id| *id != chosen);
                        }
                        None => {
                            now = state
                                .next_release_after(now)
                                .expect("some task holds memory");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn held_memory_tracks_commits_and_releases() {
        let inst = table4();
        let mut state = EngineState::new(&inst);
        assert_eq!(state.held_at(Time::ZERO), MemSize::ZERO);
        // Commit B (comm 1, comp 6, mem 1) at t = 0: active until 7.
        let end = state.commit(&inst, TaskId(1), Time::ZERO);
        assert_eq!(end, Time::units_int(7));
        assert_eq!(state.held_at(Time::units_int(3)), MemSize::from_bytes(1));
        assert_eq!(state.held_at(Time::units_int(7)), MemSize::ZERO);
        assert_eq!(state.link_free, Time::units_int(1));
        assert_eq!(state.cpu_free, Time::units_int(7));
        assert_eq!(
            state.next_release_after(Time::ZERO),
            Some(Time::units_int(7))
        );
        assert_eq!(state.next_release_after(Time::units_int(7)), None);
    }

    #[test]
    fn release_up_to_prunes_and_preserves_queries() {
        let inst = table4();
        let mut state = EngineState::new(&inst);
        // B (comp ends at 7, mem 1) then D (comm [1,6), comp [7,8), mem 5).
        state.commit(&inst, TaskId(1), Time::ZERO);
        state.commit(&inst, TaskId(3), Time::units_int(1));
        assert_eq!(state.held_at(Time::units_int(6)), MemSize::from_bytes(6));
        // Pruning at 7 releases B but keeps D queued.
        state.release_up_to(Time::units_int(7));
        assert_eq!(state.held_at(Time::units_int(7)), MemSize::from_bytes(5));
        assert_eq!(
            state.next_release_after(Time::units_int(7)),
            Some(Time::units_int(8))
        );
        // Pruning at 8 empties the queue.
        state.release_up_to(Time::units_int(8));
        assert_eq!(state.held_at(Time::units_int(8)), MemSize::ZERO);
        assert_eq!(state.next_release_after(Time::units_int(8)), None);
        // Pruning past the end stays consistent.
        state.release_up_to(Time::units_int(100));
        assert_eq!(state.held_at(Time::units_int(100)), MemSize::ZERO);
    }

    #[test]
    fn fits_at_respects_capacity() {
        let inst = table4(); // capacity 6
        let mut state = EngineState::new(&inst);
        // B holds mem 1 until t = 7, then D holds mem 5 until t = 8.
        state.commit(&inst, TaskId(1), Time::ZERO);
        state.commit(&inst, TaskId(3), Time::units_int(1));
        // At t = 6 nothing else fits (held 6).
        assert!(!state.fits_at(inst.task(TaskId(0)), Time::units_int(6)));
        // At t = 8 both releases happened.
        assert!(state.fits_at(inst.task(TaskId(2)), Time::units_int(8)));
    }

    #[test]
    fn induced_idle_measures_cpu_gap() {
        let inst = table4();
        let mut state = EngineState::new(&inst);
        // B first: cpu_free = 7.
        state.commit(&inst, TaskId(1), Time::ZERO);
        // Starting A (comm 3) at t = 1 ends its transfer at 4 < 7: no idle.
        assert_eq!(
            state.induced_cpu_idle(inst.task(TaskId(0)), Time::units_int(1)),
            Time::ZERO
        );
        // Starting A at t = 8 ends at 11: 4 units of CPU idle.
        assert_eq!(
            state.induced_cpu_idle(inst.task(TaskId(0)), Time::units_int(8)),
            Time::units_int(4)
        );
    }

    #[test]
    fn min_idle_filter_keeps_ties() {
        let inst = table4();
        let mut state = EngineState::new(&inst);
        state.commit(&inst, TaskId(1), Time::ZERO); // cpu busy until 7
        let candidates = vec![TaskId(0), TaskId(2), TaskId(3)];
        // At t = 1 every remaining transfer finishes before 7: all tie at 0.
        let kept = filter_minimum_cpu_idle(&inst, &state, &candidates, Time::units_int(1));
        assert_eq!(kept, candidates);
        // At t = 5, A (comm 3) ends at 8 (idle 1), C (comm 4) at 9 (idle 2),
        // D (comm 5) at 10 (idle 3): only A is kept.
        let kept = filter_minimum_cpu_idle(&inst, &state, &candidates, Time::units_int(5));
        assert_eq!(kept, vec![TaskId(0)]);
        assert!(filter_minimum_cpu_idle(&inst, &state, &[], Time::ZERO).is_empty());
    }
}
