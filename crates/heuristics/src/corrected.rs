//! Static order with dynamic corrections (Section 4.3 of the paper).
//!
//! The Johnson (OMIM) order is precomputed and followed as long as the next
//! task of the order fits in the available memory. When it does not, a task
//! is selected dynamically — among the remaining tasks that fit and induce
//! minimum idle time on the processing unit — and removed from the pending
//! order. If nothing fits, the link stays idle until the next memory
//! release.

use crate::engine::{select_candidate, EngineState};
use crate::SelectionCriterion;
use dts_core::index::CandidateIndex;
use dts_core::prelude::*;
use dts_flowshop::johnson::johnson_order;
use serde::{Deserialize, Serialize};

/// Criterion used when a dynamic correction is needed. The options mirror
/// [`SelectionCriterion`]; a separate type keeps
/// the heuristic names (`OOLCMR`/`OOSCMR`/`OOMAMR`) self-documenting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorrectionCriterion {
    /// `OOLCMR`: largest communication time.
    LargestCommunication,
    /// `OOSCMR`: smallest communication time.
    SmallestCommunication,
    /// `OOMAMR`: largest computation/communication ratio.
    MaximumAcceleration,
}

impl From<CorrectionCriterion> for SelectionCriterion {
    fn from(c: CorrectionCriterion) -> SelectionCriterion {
        match c {
            CorrectionCriterion::LargestCommunication => SelectionCriterion::LargestCommunication,
            CorrectionCriterion::SmallestCommunication => SelectionCriterion::SmallestCommunication,
            CorrectionCriterion::MaximumAcceleration => SelectionCriterion::MaximumAcceleration,
        }
    }
}

/// Runs a static-order-with-dynamic-corrections heuristic using the Johnson
/// order as the precomputed order, under the execution model the instance
/// carries ([`ExecutionModel::Explicit`] unless one was attached).
pub fn run_corrected(instance: &Instance, criterion: CorrectionCriterion) -> Result<Schedule> {
    run_corrected_with_order(instance, &johnson_order(instance), criterion)
}

/// Same as [`run_corrected`] but with an arbitrary precomputed order. Used by
/// the ablation benchmarks to apply corrections on top of other static
/// orders.
pub fn run_corrected_with_order(
    instance: &Instance,
    order: &[TaskId],
    criterion: CorrectionCriterion,
) -> Result<Schedule> {
    run_corrected_with_order_model(instance, order, criterion, instance.model())
}

/// [`run_corrected_with_order`] under an explicit [`ExecutionModel`]
/// (overriding whatever the instance carries). As for the dynamic
/// heuristics, the order-following and correction rules are shared by all
/// models; only the commit timing differs (see [`EngineState::commit`]).
pub fn run_corrected_with_order_model(
    instance: &Instance,
    order: &[TaskId],
    criterion: CorrectionCriterion,
    model: ExecutionModel,
) -> Result<Schedule> {
    model.validate()?;
    dts_core::simulate::check_permutation(instance, order)?;
    instance.check_tasks_fit()?;
    let selection: SelectionCriterion = criterion.into();
    let mut state = EngineState::with_model(instance, model);
    // The pending set is the suffix of `order` starting at `cursor`, minus
    // the positions already scheduled by a dynamic correction; `index`
    // mirrors it as a memory-indexed structure so a correction is resolved
    // with O(log n) threshold queries (see `select_candidate`) instead of
    // scanning the whole suffix.
    let mut scheduled = vec![false; order.len()];
    let mut position_of = vec![0usize; order.len()];
    for (pos, id) in order.iter().enumerate() {
        position_of[id.index()] = pos;
    }
    let mut index = match selection {
        SelectionCriterion::MaximumAcceleration => CandidateIndex::new(instance),
        _ => CandidateIndex::comm_only(instance),
    };
    let mut cursor = 0usize;
    let mut now = Time::ZERO;

    while !index.is_empty() {
        now = now.max(state.link_free);
        state.release_up_to(now);
        while cursor < order.len() && scheduled[cursor] {
            cursor += 1;
        }
        let next = order[cursor];
        if state.fits_at(instance.task(next), now) {
            // Follow the precomputed order.
            state.commit(instance, next, now);
            scheduled[cursor] = true;
            index.remove(next);
            cursor += 1;
            continue;
        }
        // The next task of the order does not fit: correct dynamically. The
        // index still contains `next`, but it is never returned here since
        // the queries only consider tasks that fit.
        match select_candidate(instance, &state, &index, now, selection) {
            Some(chosen) => {
                state.commit(instance, chosen, now);
                scheduled[position_of[chosen.index()]] = true;
                index.remove(chosen);
            }
            None => {
                now = state.next_release_after(now).ok_or_else(|| {
                    CoreError::Internal("no task fits yet no memory is held".into())
                })?;
            }
        }
    }
    Ok(state.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::feasibility::is_feasible;
    use dts_core::instances::{random_instance_decoupled_memory, table5};
    use dts_core::simulate::simulate_sequence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn comm_order_names(inst: &Instance, sched: &Schedule) -> Vec<String> {
        sched
            .comm_order()
            .iter()
            .map(|id| inst.task(*id).name.clone())
            .collect()
    }

    /// Fig. 6 of the paper: the three corrected heuristics on Table 5 with a
    /// memory capacity of 9 (Johnson order B C D E A).
    #[test]
    fn fig6_oolcmr_schedule() {
        let inst = table5();
        let sched = run_corrected(&inst, CorrectionCriterion::LargestCommunication).unwrap();
        assert_eq!(
            comm_order_names(&inst, &sched),
            vec!["B", "D", "A", "E", "C"]
        );
        assert_eq!(sched.makespan(&inst), Time::units_int(33));
        assert!(is_feasible(&inst, &sched));
    }

    #[test]
    fn fig6_ooscmr_schedule() {
        let inst = table5();
        let sched = run_corrected(&inst, CorrectionCriterion::SmallestCommunication).unwrap();
        assert_eq!(
            comm_order_names(&inst, &sched),
            vec!["B", "E", "A", "D", "C"]
        );
        assert_eq!(sched.makespan(&inst), Time::units_int(35));
        assert!(is_feasible(&inst, &sched));
    }

    #[test]
    fn fig6_oomamr_schedule() {
        let inst = table5();
        let sched = run_corrected(&inst, CorrectionCriterion::MaximumAcceleration).unwrap();
        assert_eq!(
            comm_order_names(&inst, &sched),
            vec!["B", "D", "E", "A", "C"]
        );
        assert_eq!(sched.makespan(&inst), Time::units_int(33));
        assert!(is_feasible(&inst, &sched));
    }

    #[test]
    fn fig6_oolcmr_detailed_timeline() {
        // Event times read off Fig. 6 (OOLCMR row): B comm [0,2) comp [2,8);
        // D comm [2,7) comp [8,12); A comm [8,12) comp [12,13);
        // E comm [12,15) comp [15,17); C comm [17,25) comp [25,33).
        let inst = table5();
        let sched = run_corrected(&inst, CorrectionCriterion::LargestCommunication).unwrap();
        let by_name = |n: &str| {
            let (id, _) = inst.iter().find(|(_, t)| t.name == n).unwrap();
            *sched.entry(id).unwrap()
        };
        assert_eq!(by_name("D").comm_start, Time::units_int(2));
        assert_eq!(by_name("A").comm_start, Time::units_int(8));
        assert_eq!(by_name("E").comm_start, Time::units_int(12));
        assert_eq!(by_name("C").comm_start, Time::units_int(17));
        assert_eq!(by_name("C").comp_start, Time::units_int(25));
    }

    #[test]
    fn with_unconstrained_memory_corrected_equals_johnson() {
        // When memory is never a restriction the corrected heuristics follow
        // the Johnson order exactly and reach OMIM.
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..20 {
            let inst = random_instance_decoupled_memory(&mut rng, 12, 1000.0);
            let omim = dts_flowshop::johnson::johnson_makespan(&inst);
            for criterion in [
                CorrectionCriterion::LargestCommunication,
                CorrectionCriterion::SmallestCommunication,
                CorrectionCriterion::MaximumAcceleration,
            ] {
                let sched = run_corrected(&inst, criterion).unwrap();
                assert_eq!(sched.makespan(&inst), omim);
            }
        }
    }

    #[test]
    fn corrected_never_worse_than_uncorrected_on_table5() {
        // On Table 5 the plain OOSIM (no corrections) is blocked by C and
        // ends later than every corrected variant.
        let inst = table5();
        let johnson = dts_flowshop::johnson::johnson_order(&inst);
        let uncorrected = simulate_sequence(&inst, &johnson).unwrap().makespan(&inst);
        for criterion in [
            CorrectionCriterion::LargestCommunication,
            CorrectionCriterion::SmallestCommunication,
            CorrectionCriterion::MaximumAcceleration,
        ] {
            let corrected = run_corrected(&inst, criterion).unwrap().makespan(&inst);
            assert!(corrected <= uncorrected);
        }
    }

    #[test]
    fn corrected_with_custom_order_is_feasible() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let inst = random_instance_decoupled_memory(&mut rng, 15, 1.25);
            // Apply corrections on top of the submission order.
            let order = inst.task_ids();
            let sched =
                run_corrected_with_order(&inst, &order, CorrectionCriterion::MaximumAcceleration)
                    .unwrap();
            assert!(is_feasible(&inst, &sched));
            assert_eq!(sched.len(), inst.len());
        }
    }

    #[test]
    fn invalid_order_rejected() {
        let inst = table5();
        let err = run_corrected_with_order(
            &inst,
            &[TaskId(0), TaskId(1)],
            CorrectionCriterion::LargestCommunication,
        );
        assert!(err.is_err());
    }

    #[test]
    fn duplicated_order_reports_the_repeated_task() {
        let inst = table5();
        let err = run_corrected_with_order(
            &inst,
            &[TaskId(0), TaskId(1), TaskId(1), TaskId(3), TaskId(4)],
            CorrectionCriterion::LargestCommunication,
        )
        .unwrap_err();
        assert_eq!(err, CoreError::DuplicateTask(TaskId(1)));
    }
}
