//! # dts-heuristics
//!
//! The data-transfer ordering heuristics of Section 4 of the paper, grouped
//! in the same three categories:
//!
//! * **static orderings** ([`static_order`]): the complete processing order
//!   is computed in advance from task characteristics and executed (in the
//!   same order on both resources) under the memory capacity — `OS`,
//!   `OOSIM`, `IOCMS`, `DOCPS`, `IOCCS`, `DOCCS`, plus the `GG`
//!   (Gilmore–Gomory) and `BP` (First-Fit bin packing) heuristics from
//!   previous work;
//! * **dynamic selection** ([`dynamic`]): whenever the communication link is
//!   free, the next task is chosen among those that fit in the remaining
//!   memory and induce minimum idle time on the processing unit — `LCMR`,
//!   `SCMR`, `MAMR`;
//! * **static order with dynamic corrections** ([`corrected`]): the Johnson
//!   (OMIM) order is followed as long as the next task fits in memory and a
//!   dynamic selection is used to fill the gap otherwise — `OOLCMR`,
//!   `OOSCMR`, `OOMAMR`.
//!
//! [`Heuristic`] enumerates all of them, [`run_heuristic`] executes any of
//! them on an [`Instance`], and [`batch`] applies a
//! heuristic to successive batches of tasks (Section 6.3).

#![warn(missing_docs)]

pub mod batch;
pub mod corrected;
pub mod dynamic;
pub mod engine;
pub mod static_order;

use dts_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

pub use batch::{run_heuristic_batched, run_heuristic_batched_pooled, BatchConfig};
pub use corrected::CorrectionCriterion;
pub use dynamic::SelectionCriterion;

/// The category of a heuristic, used by the "best variant of each category"
/// experiments (Figs. 10, 12 and 13 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeuristicCategory {
    /// The arbitrary submission order, plotted separately in the paper.
    SubmissionOrder,
    /// Static orderings computed in advance.
    Static,
    /// Dynamic selection at runtime.
    Dynamic,
    /// Static order with dynamic corrections.
    StaticDynamic,
}

impl HeuristicCategory {
    /// The four categories in presentation order.
    pub const ALL: [HeuristicCategory; 4] = [
        HeuristicCategory::SubmissionOrder,
        HeuristicCategory::Static,
        HeuristicCategory::Dynamic,
        HeuristicCategory::StaticDynamic,
    ];
}

impl fmt::Display for HeuristicCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeuristicCategory::SubmissionOrder => write!(f, "OS"),
            HeuristicCategory::Static => write!(f, "Static"),
            HeuristicCategory::Dynamic => write!(f, "Dynamic"),
            HeuristicCategory::StaticDynamic => write!(f, "Static+Dynamic"),
        }
    }
}

/// Every ordering heuristic evaluated in the paper (Figs. 9–13).
///
/// The MILP-based `lp.k` heuristics live in the `dts-milp` crate since they
/// need the branch-and-bound solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum Heuristic {
    /// Order of submission: the arbitrary order in which tasks are given.
    OS,
    /// Order of the optimal strategy for infinite memory (Johnson order),
    /// executed under the memory constraint.
    OOSIM,
    /// Increasing order of communication time.
    IOCMS,
    /// Decreasing order of computation time.
    DOCPS,
    /// Increasing order of communication plus computation time.
    IOCCS,
    /// Decreasing order of communication plus computation time.
    DOCCS,
    /// Gilmore–Gomory no-wait flowshop sequence.
    GG,
    /// First-Fit bin-packing groups.
    BP,
    /// Dynamic: largest communication task that respects the memory
    /// restriction.
    LCMR,
    /// Dynamic: smallest communication task that respects the memory
    /// restriction.
    SCMR,
    /// Dynamic: maximum-acceleration task (computation/communication ratio)
    /// that respects the memory restriction.
    MAMR,
    /// Johnson order with dynamic corrections, choosing the largest
    /// communication task when correcting.
    OOLCMR,
    /// Johnson order with dynamic corrections, choosing the smallest
    /// communication task when correcting.
    OOSCMR,
    /// Johnson order with dynamic corrections, choosing the maximum
    /// acceleration task when correcting.
    OOMAMR,
}

impl Heuristic {
    /// All heuristics, in the order the paper lists them on its plots.
    pub const ALL: [Heuristic; 14] = [
        Heuristic::OS,
        Heuristic::GG,
        Heuristic::BP,
        Heuristic::OOSIM,
        Heuristic::IOCMS,
        Heuristic::DOCPS,
        Heuristic::IOCCS,
        Heuristic::DOCCS,
        Heuristic::LCMR,
        Heuristic::SCMR,
        Heuristic::MAMR,
        Heuristic::OOLCMR,
        Heuristic::OOSCMR,
        Heuristic::OOMAMR,
    ];

    /// The category this heuristic belongs to.
    pub fn category(self) -> HeuristicCategory {
        match self {
            Heuristic::OS => HeuristicCategory::SubmissionOrder,
            Heuristic::OOSIM
            | Heuristic::IOCMS
            | Heuristic::DOCPS
            | Heuristic::IOCCS
            | Heuristic::DOCCS
            | Heuristic::GG
            | Heuristic::BP => HeuristicCategory::Static,
            Heuristic::LCMR | Heuristic::SCMR | Heuristic::MAMR => HeuristicCategory::Dynamic,
            Heuristic::OOLCMR | Heuristic::OOSCMR | Heuristic::OOMAMR => {
                HeuristicCategory::StaticDynamic
            }
        }
    }

    /// Heuristics belonging to a category.
    pub fn in_category(category: HeuristicCategory) -> Vec<Heuristic> {
        Heuristic::ALL
            .iter()
            .copied()
            .filter(|h| h.category() == category)
            .collect()
    }

    /// Short name as used on the paper's plots.
    pub fn name(self) -> &'static str {
        match self {
            Heuristic::OS => "OS",
            Heuristic::OOSIM => "OOSIM",
            Heuristic::IOCMS => "IOCMS",
            Heuristic::DOCPS => "DOCPS",
            Heuristic::IOCCS => "IOCCS",
            Heuristic::DOCCS => "DOCCS",
            Heuristic::GG => "GG",
            Heuristic::BP => "BP",
            Heuristic::LCMR => "LCMR",
            Heuristic::SCMR => "SCMR",
            Heuristic::MAMR => "MAMR",
            Heuristic::OOLCMR => "OOLCMR",
            Heuristic::OOSCMR => "OOSCMR",
            Heuristic::OOMAMR => "OOMAMR",
        }
    }

    /// Parses a heuristic from its short name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Heuristic> {
        let upper = name.to_ascii_uppercase();
        Heuristic::ALL.iter().copied().find(|h| h.name() == upper)
    }
}

impl fmt::Display for Heuristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs a heuristic on an instance and returns the resulting schedule,
/// under the execution model the instance carries
/// ([`ExecutionModel::Explicit`] unless one was attached).
pub fn run_heuristic(instance: &Instance, heuristic: Heuristic) -> Result<Schedule> {
    run_heuristic_with(instance, heuristic, instance.model())
}

/// [`run_heuristic`] under an explicit [`ExecutionModel`] (overriding
/// whatever the instance carries). Static orders are computed exactly as
/// before — the ordering rules only look at task characteristics — and then
/// executed under `model`; the dynamic and corrected heuristics thread the
/// model through their decision engines.
pub fn run_heuristic_with(
    instance: &Instance,
    heuristic: Heuristic,
    model: ExecutionModel,
) -> Result<Schedule> {
    match heuristic {
        Heuristic::OS
        | Heuristic::OOSIM
        | Heuristic::IOCMS
        | Heuristic::DOCPS
        | Heuristic::IOCCS
        | Heuristic::DOCCS
        | Heuristic::GG
        | Heuristic::BP => {
            let order = static_order::static_order(instance, heuristic)?;
            simulate_sequence_with(instance, &order, model)
        }
        Heuristic::LCMR => {
            dynamic::run_dynamic_with(instance, SelectionCriterion::LargestCommunication, model)
        }
        Heuristic::SCMR => {
            dynamic::run_dynamic_with(instance, SelectionCriterion::SmallestCommunication, model)
        }
        Heuristic::MAMR => {
            dynamic::run_dynamic_with(instance, SelectionCriterion::MaximumAcceleration, model)
        }
        Heuristic::OOLCMR => corrected::run_corrected_with_order_model(
            instance,
            &dts_flowshop::johnson::johnson_order(instance),
            CorrectionCriterion::LargestCommunication,
            model,
        ),
        Heuristic::OOSCMR => corrected::run_corrected_with_order_model(
            instance,
            &dts_flowshop::johnson::johnson_order(instance),
            CorrectionCriterion::SmallestCommunication,
            model,
        ),
        Heuristic::OOMAMR => corrected::run_corrected_with_order_model(
            instance,
            &dts_flowshop::johnson::johnson_order(instance),
            CorrectionCriterion::MaximumAcceleration,
            model,
        ),
    }
}

/// Runs every heuristic and returns the one with the smallest makespan,
/// together with its schedule. Ties are broken by the order of
/// [`Heuristic::ALL`].
///
/// ```
/// use dts_core::instances::table5;
/// use dts_flowshop::johnson::johnson_makespan;
///
/// let instance = table5();
/// let (winner, schedule) = dts_heuristics::best_heuristic(&instance).unwrap();
/// // No heuristic can beat the infinite-memory (OMIM) lower bound.
/// assert!(schedule.makespan(&instance) >= johnson_makespan(&instance));
/// println!("best heuristic on Table 5: {winner}");
/// ```
pub fn best_heuristic(instance: &Instance) -> Result<(Heuristic, Schedule)> {
    let mut best: Option<(Heuristic, Schedule, Time)> = None;
    for &h in &Heuristic::ALL {
        let schedule = run_heuristic(instance, h)?;
        let makespan = schedule.makespan(instance);
        if best.as_ref().is_none_or(|(_, _, m)| makespan < *m) {
            best = Some((h, schedule, makespan));
        }
    }
    let (h, s, _) = best.expect("Heuristic::ALL is non-empty");
    Ok((h, s))
}

/// Runs every heuristic of a category and returns the smallest makespan
/// achieved (the "best variant" curves of Figs. 10, 12, 13).
pub fn best_in_category(instance: &Instance, category: HeuristicCategory) -> Result<Time> {
    let mut best = Time::MAX;
    for h in Heuristic::in_category(category) {
        let makespan = run_heuristic(instance, h)?.makespan(instance);
        if makespan < best {
            best = makespan;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::feasibility::is_feasible;
    use dts_core::instances::{random_instance_decoupled_memory, table3, table4, table5};
    use dts_flowshop::johnson::johnson_makespan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_heuristics_produce_feasible_schedules_on_paper_tables() {
        for inst in [table3(), table4(), table5()] {
            for &h in &Heuristic::ALL {
                let sched = run_heuristic(&inst, h).unwrap();
                assert!(
                    is_feasible(&inst, &sched),
                    "{h} infeasible on {}: {:?}",
                    inst.label,
                    dts_core::feasibility::validate(&inst, &sched)
                );
                assert!(sched.makespan(&inst) >= johnson_makespan(&inst));
                assert!(sched.is_permutation_schedule());
            }
        }
    }

    #[test]
    fn all_heuristics_feasible_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..25 {
            let inst = random_instance_decoupled_memory(&mut rng, 12, 1.3);
            let omim = johnson_makespan(&inst);
            for &h in &Heuristic::ALL {
                let sched = run_heuristic(&inst, h).unwrap();
                assert!(is_feasible(&inst, &sched), "{h} infeasible");
                assert!(sched.makespan(&inst) >= omim, "{h} beat the lower bound");
            }
        }
    }

    #[test]
    fn best_heuristic_is_minimum_over_all() {
        let inst = table5();
        let (_, best_sched) = best_heuristic(&inst).unwrap();
        let best = best_sched.makespan(&inst);
        for &h in &Heuristic::ALL {
            assert!(run_heuristic(&inst, h).unwrap().makespan(&inst) >= best);
        }
    }

    #[test]
    fn best_in_category_covers_all_categories() {
        let inst = table4();
        for cat in HeuristicCategory::ALL {
            let best = best_in_category(&inst, cat).unwrap();
            assert!(best >= johnson_makespan(&inst));
            assert!(!Heuristic::in_category(cat).is_empty());
        }
    }

    #[test]
    fn names_round_trip() {
        for &h in &Heuristic::ALL {
            assert_eq!(Heuristic::from_name(h.name()), Some(h));
            assert_eq!(Heuristic::from_name(&h.name().to_lowercase()), Some(h));
        }
        assert_eq!(Heuristic::from_name("nope"), None);
    }

    #[test]
    fn categories_partition_the_heuristics() {
        let total: usize = HeuristicCategory::ALL
            .iter()
            .map(|&c| Heuristic::in_category(c).len())
            .sum();
        assert_eq!(total, Heuristic::ALL.len());
        assert_eq!(Heuristic::OOSIM.category(), HeuristicCategory::Static);
        assert_eq!(Heuristic::MAMR.category(), HeuristicCategory::Dynamic);
        assert_eq!(
            Heuristic::OOMAMR.category(),
            HeuristicCategory::StaticDynamic
        );
    }
}
