//! Static ordering heuristics (Section 4.1 and 4.4 of the paper).
//!
//! A static heuristic computes the full processing order in advance from the
//! task characteristics; the order is then executed on both resources by the
//! memory-constrained executor
//! ([`simulate_sequence`]).

use crate::Heuristic;
use dts_core::prelude::*;
use dts_flowshop::gilmore_gomory::gilmore_gomory_order;
use dts_flowshop::johnson::johnson_order;

/// Computes the task order used by a static heuristic.
///
/// # Errors
/// Returns an error if `heuristic` is not a static heuristic.
pub fn static_order(instance: &Instance, heuristic: Heuristic) -> Result<Vec<TaskId>> {
    let order = match heuristic {
        Heuristic::OS => instance.task_ids(),
        Heuristic::OOSIM => johnson_order(instance),
        Heuristic::IOCMS => sorted_by(instance, |t| t.comm_time, false),
        Heuristic::DOCPS => sorted_by(instance, |t| t.comp_time, true),
        Heuristic::IOCCS => sorted_by(instance, |t| t.total_time(), false),
        Heuristic::DOCCS => sorted_by(instance, |t| t.total_time(), true),
        Heuristic::GG => gilmore_gomory_order(instance),
        Heuristic::BP => first_fit_order(instance),
        other => {
            return Err(CoreError::Infeasible(format!(
                "{other} is not a static heuristic"
            )))
        }
    };
    Ok(order)
}

/// Sorts task ids by a key extracted from the task, ascending or descending.
/// The sort is stable, so ties keep the submission order (deterministic and
/// matching the paper's examples).
fn sorted_by<K: Ord>(
    instance: &Instance,
    key: impl Fn(&Task) -> K,
    descending: bool,
) -> Vec<TaskId> {
    let mut ids = instance.task_ids();
    if descending {
        ids.sort_by_key(|a| std::cmp::Reverse(key(instance.task(*a))));
    } else {
        ids.sort_by_key(|a| key(instance.task(*a)));
    }
    ids
}

/// The `BP` heuristic: First-Fit bin packing of the tasks' memory
/// requirements into bins of the memory capacity, then the concatenation of
/// the bins in creation order. Tasks are considered in submission order, as
/// in the paper ("tasks are considered in an arbitrary order").
pub fn first_fit_order(instance: &Instance) -> Vec<TaskId> {
    let capacity = instance.capacity();
    let mut bins: Vec<(MemSize, Vec<TaskId>)> = Vec::new();
    for (id, task) in instance.iter() {
        match bins
            .iter_mut()
            .find(|(used, _)| used.saturating_add(task.mem) <= capacity)
        {
            Some((used, members)) => {
                *used += task.mem;
                members.push(id);
            }
            None => bins.push((task.mem, vec![id])),
        }
    }
    bins.into_iter().flat_map(|(_, members)| members).collect()
}

/// Groups produced by the First-Fit packing (exposed for inspection and for
/// the bin-packing tests).
pub fn first_fit_bins(instance: &Instance) -> Vec<Vec<TaskId>> {
    let capacity = instance.capacity();
    let mut bins: Vec<(MemSize, Vec<TaskId>)> = Vec::new();
    for (id, task) in instance.iter() {
        match bins
            .iter_mut()
            .find(|(used, _)| used.saturating_add(task.mem) <= capacity)
        {
            Some((used, members)) => {
                *used += task.mem;
                members.push(id);
            }
            None => bins.push((task.mem, vec![id])),
        }
    }
    bins.into_iter().map(|(_, members)| members).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::instances::{random_instance_decoupled_memory, table3};
    use dts_core::simulate::simulate_sequence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn names(inst: &Instance, order: &[TaskId]) -> Vec<String> {
        order.iter().map(|id| inst.task(*id).name.clone()).collect()
    }

    /// Fig. 4 of the paper: the static orders and the makespans they reach
    /// on Table 3 with a memory capacity of 6.
    #[test]
    fn fig4_static_orders_and_makespans() {
        let inst = table3();
        let cases = [
            (Heuristic::OOSIM, vec!["B", "C", "A", "D"], 15),
            (Heuristic::IOCMS, vec!["B", "D", "A", "C"], 16),
            (Heuristic::DOCPS, vec!["C", "B", "A", "D"], 14),
            (Heuristic::IOCCS, vec!["D", "B", "A", "C"], 16),
            (Heuristic::DOCCS, vec!["C", "A", "B", "D"], 17),
        ];
        for (h, expected_order, expected_makespan) in cases {
            let order = static_order(&inst, h).unwrap();
            assert_eq!(names(&inst, &order), expected_order, "{h} order");
            let sched = simulate_sequence(&inst, &order).unwrap();
            assert_eq!(
                sched.makespan(&inst),
                Time::units_int(expected_makespan),
                "{h} makespan"
            );
        }
    }

    #[test]
    fn os_keeps_submission_order() {
        let inst = table3();
        let order = static_order(&inst, Heuristic::OS).unwrap();
        assert_eq!(order, inst.task_ids());
    }

    #[test]
    fn ioccs_and_doccs_are_reverses_up_to_ties() {
        let inst = table3();
        let inc = static_order(&inst, Heuristic::IOCCS).unwrap();
        let dec = static_order(&inst, Heuristic::DOCCS).unwrap();
        let inc_keys: Vec<Time> = inc.iter().map(|id| inst.task(*id).total_time()).collect();
        let dec_keys: Vec<Time> = dec.iter().map(|id| inst.task(*id).total_time()).collect();
        assert!(inc_keys.windows(2).all(|w| w[0] <= w[1]));
        assert!(dec_keys.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn bin_packing_groups_respect_capacity() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let inst = random_instance_decoupled_memory(&mut rng, 15, 1.8);
            let bins = first_fit_bins(&inst);
            // Every task appears exactly once.
            let mut all: Vec<usize> = bins.iter().flatten().map(|id| id.index()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..inst.len()).collect::<Vec<_>>());
            // Every bin fits in the capacity.
            for bin in &bins {
                let used: MemSize = bin.iter().map(|id| inst.task(*id).mem).sum();
                assert!(used <= inst.capacity());
            }
            // first_fit_order is the concatenation of the bins.
            let order = first_fit_order(&inst);
            let concat: Vec<TaskId> = bins.into_iter().flatten().collect();
            assert_eq!(order, concat);
        }
    }

    #[test]
    fn every_static_order_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(23);
        let inst = random_instance_decoupled_memory(&mut rng, 30, 1.4);
        for h in [
            Heuristic::OS,
            Heuristic::OOSIM,
            Heuristic::IOCMS,
            Heuristic::DOCPS,
            Heuristic::IOCCS,
            Heuristic::DOCCS,
            Heuristic::GG,
            Heuristic::BP,
        ] {
            let order = static_order(&inst, h).unwrap();
            let mut sorted: Vec<usize> = order.iter().map(|id| id.index()).collect();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..inst.len()).collect::<Vec<_>>(), "{h}");
        }
    }

    #[test]
    fn dynamic_heuristics_rejected() {
        let inst = table3();
        assert!(static_order(&inst, Heuristic::LCMR).is_err());
        assert!(static_order(&inst, Heuristic::OOMAMR).is_err());
    }
}
