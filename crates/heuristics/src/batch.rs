//! Batched scheduling (Section 6.3 of the paper).
//!
//! A runtime scheduler usually only sees a limited window of independent
//! tasks. The paper models this by splitting each trace into batches of 100
//! tasks and applying each heuristic to the batches in succession; the
//! makespan is the completion time of the last batch, with batches executed
//! back to back.

use crate::{run_heuristic, Heuristic};
use dts_core::prelude::*;

/// Configuration of batched execution.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Number of tasks per batch (the paper uses 100). The last batch may be
    /// smaller.
    pub batch_size: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { batch_size: 100 }
    }
}

/// Runs `heuristic` on successive batches of `instance` and returns the
/// resulting global schedule. Batches are scheduled one after the other: the
/// communications and computations of batch `k + 1` start no earlier than
/// the completion of batch `k` (the runtime only discovers the next batch
/// once the current one is done).
pub fn run_heuristic_batched(
    instance: &Instance,
    heuristic: Heuristic,
    config: BatchConfig,
) -> Result<Schedule> {
    if config.batch_size == 0 {
        return Err(CoreError::Infeasible("batch size must be positive".into()));
    }
    let ids = instance.task_ids();
    let mut global = Schedule::with_capacity(instance.len());
    let mut offset = Time::ZERO;

    for batch in ids.chunks(config.batch_size) {
        let sub = instance.sub_instance(batch)?;
        let sub_schedule = run_heuristic(&sub, heuristic)?;
        // Translate the sub-schedule back to global task ids and shift it by
        // the completion time of the previous batches.
        for entry in sub_schedule.entries() {
            global.push(ScheduleEntry {
                task: batch[entry.task.index()],
                comm_start: entry.comm_start + offset,
                comp_start: entry.comp_start + offset,
            });
        }
        offset += sub_schedule.makespan(&sub);
    }
    Ok(global)
}

/// Sum over batches of the OMIM lower bound: the reference value the paper
/// normalizes against in the batched experiment (each batch cannot beat its
/// own infinite-memory optimum).
pub fn batched_omim(instance: &Instance, config: BatchConfig) -> Result<Time> {
    if config.batch_size == 0 {
        return Err(CoreError::Infeasible("batch size must be positive".into()));
    }
    let ids = instance.task_ids();
    let mut total = Time::ZERO;
    for batch in ids.chunks(config.batch_size) {
        let sub = instance.sub_instance(batch)?;
        total += dts_flowshop::johnson::johnson_makespan(&sub);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::feasibility::is_feasible;
    use dts_core::instances::random_instance_decoupled_memory;
    use dts_flowshop::johnson::johnson_makespan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batched_schedule_is_feasible_and_complete() {
        let mut rng = StdRng::seed_from_u64(7);
        let inst = random_instance_decoupled_memory(&mut rng, 57, 1.3);
        for h in [Heuristic::OOSIM, Heuristic::MAMR, Heuristic::OOLCMR] {
            let sched = run_heuristic_batched(&inst, h, BatchConfig { batch_size: 10 }).unwrap();
            assert_eq!(sched.len(), inst.len());
            assert!(is_feasible(&inst, &sched), "{h}");
        }
    }

    #[test]
    fn batching_never_improves_over_whole_instance_lower_bound() {
        let mut rng = StdRng::seed_from_u64(8);
        let inst = random_instance_decoupled_memory(&mut rng, 40, 1.5);
        let omim = johnson_makespan(&inst);
        let sched =
            run_heuristic_batched(&inst, Heuristic::OOMAMR, BatchConfig { batch_size: 8 }).unwrap();
        assert!(sched.makespan(&inst) >= omim);
        // ... and at least the batched OMIM reference.
        let batched_bound = batched_omim(&inst, BatchConfig { batch_size: 8 }).unwrap();
        assert!(sched.makespan(&inst) >= batched_bound);
        assert!(batched_bound >= omim);
    }

    #[test]
    fn one_big_batch_equals_unbatched() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = random_instance_decoupled_memory(&mut rng, 25, 1.4);
        for h in [Heuristic::IOCMS, Heuristic::SCMR, Heuristic::OOSCMR] {
            let batched =
                run_heuristic_batched(&inst, h, BatchConfig { batch_size: 1000 }).unwrap();
            let plain = run_heuristic(&inst, h).unwrap();
            assert_eq!(batched.makespan(&inst), plain.makespan(&inst), "{h}");
        }
    }

    #[test]
    fn smaller_batches_generally_cost_more() {
        // Batching reduces the scheduler's look-ahead; with batch size 1 the
        // schedule is fully sequential and must be the worst of the three.
        let mut rng = StdRng::seed_from_u64(10);
        let inst = random_instance_decoupled_memory(&mut rng, 30, 1.6);
        let tiny = run_heuristic_batched(&inst, Heuristic::OOLCMR, BatchConfig { batch_size: 1 })
            .unwrap()
            .makespan(&inst);
        let whole =
            run_heuristic_batched(&inst, Heuristic::OOLCMR, BatchConfig { batch_size: 1000 })
                .unwrap()
                .makespan(&inst);
        assert!(tiny >= whole);
        // Batch size 1 is exactly the sequential sum of all task times.
        let stats = inst.stats();
        assert_eq!(tiny, stats.sequential_upper_bound());
    }

    #[test]
    fn zero_batch_size_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let inst = random_instance_decoupled_memory(&mut rng, 5, 1.5);
        assert!(
            run_heuristic_batched(&inst, Heuristic::OS, BatchConfig { batch_size: 0 }).is_err()
        );
        assert!(batched_omim(&inst, BatchConfig { batch_size: 0 }).is_err());
    }
}
