//! Batched scheduling (Section 6.3 of the paper).
//!
//! A runtime scheduler usually only sees a limited window of independent
//! tasks. The paper models this by splitting each trace into batches of 100
//! tasks and applying each heuristic to the batches in succession; the
//! makespan is the completion time of the last batch, with batches executed
//! back to back.
//!
//! Because every batch starts from an empty memory and idle resources, the
//! per-batch schedules do not depend on each other — only their *placement
//! on the time axis* does. [`run_heuristic_batched`] exploits this: it
//! solves all batches speculatively in parallel, then stitches the
//! sub-schedules together sequentially by accumulating each batch's
//! makespan as the offset of the next, producing the exact schedule a
//! sequential run builds.

use crate::{run_heuristic, Heuristic};
use dts_core::pool::run_indexed_pool;
use dts_core::prelude::*;

/// Configuration of batched execution.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Number of tasks per batch (the paper uses 100). The last batch may be
    /// smaller.
    pub batch_size: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { batch_size: 100 }
    }
}

/// Runs `heuristic` on successive batches of `instance` and returns the
/// resulting global schedule. Batches are scheduled one after the other: the
/// communications and computations of batch `k + 1` start no earlier than
/// the completion of batch `k` (the runtime only discovers the next batch
/// once the current one is done).
///
/// The per-batch solves are independent of runtime state, so they run in
/// parallel (up to the machine's available parallelism) and are stitched
/// together in batch order afterwards; the schedule is identical to a
/// sequential run's. Use [`run_heuristic_batched_pooled`] to control the
/// worker count explicitly.
///
/// ```
/// use dts_core::instances::table5;
/// use dts_heuristics::{run_heuristic, run_heuristic_batched, BatchConfig, Heuristic};
///
/// let instance = table5();
/// let batched = run_heuristic_batched(
///     &instance,
///     Heuristic::OOLCMR,
///     BatchConfig { batch_size: 2 },
/// )
/// .unwrap();
/// // Splitting 5 tasks into batches of 2 limits the scheduler's look-ahead;
/// // on this fixture (the heuristics are greedy, so this is not a law) the
/// // batched makespan does not beat the whole-instance run.
/// let whole = run_heuristic(&instance, Heuristic::OOLCMR).unwrap();
/// assert!(batched.makespan(&instance) >= whole.makespan(&instance));
/// ```
pub fn run_heuristic_batched(
    instance: &Instance,
    heuristic: Heuristic,
    config: BatchConfig,
) -> Result<Schedule> {
    let threads = if instance.len() < PARALLEL_BATCH_MIN_TASKS {
        1
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    };
    run_heuristic_batched_pooled(instance, heuristic, config, threads)
}

/// Instance size at or above which [`run_heuristic_batched`] fans its
/// batches out across workers; below it a whole batched run costs less
/// than spawning the pool. [`run_heuristic_batched_pooled`] ignores this
/// threshold and honors its explicit worker count.
pub const PARALLEL_BATCH_MIN_TASKS: usize = 256;

/// [`run_heuristic_batched`] with an explicit worker-thread count
/// (`threads <= 1` solves the batches sequentially). Workers claim batches
/// one at a time from a shared index, so heterogeneous batch costs do not
/// stall the pool; the stitching pass is always sequential and deterministic.
///
/// # Errors
///
/// A failing batch stops the pool; among the failures observed, the one of
/// the lowest batch index is returned — the same error a sequential run
/// reports, since that run would fail at the first bad batch. A panic inside
/// a batch surfaces as [`CoreError::Internal`].
pub fn run_heuristic_batched_pooled(
    instance: &Instance,
    heuristic: Heuristic,
    config: BatchConfig,
    threads: usize,
) -> Result<Schedule> {
    if config.batch_size == 0 {
        return Err(CoreError::Infeasible("batch size must be positive".into()));
    }
    let ids = instance.task_ids();
    let batches: Vec<&[TaskId]> = ids.chunks(config.batch_size).collect();
    let solved = solve_batches(instance, heuristic, &batches, threads)?;

    let mut global = Schedule::with_capacity(instance.len());
    let mut offset = Time::ZERO;
    for (batch, (sub_schedule, makespan)) in batches.iter().zip(solved) {
        // Translate the sub-schedule back to global task ids and shift it by
        // the completion time of the previous batches.
        for entry in sub_schedule.entries() {
            global.push(ScheduleEntry {
                task: batch[entry.task.index()],
                comm_start: entry.comm_start + offset,
                comp_start: entry.comp_start + offset,
            });
        }
        offset += makespan;
    }
    Ok(global)
}

/// Solves every batch independently (each from an empty runtime state) and
/// returns, in batch order, each sub-schedule with its makespan. The
/// work-stealing, abort-on-error and lowest-index-error semantics come
/// from [`run_indexed_pool`].
fn solve_batches(
    instance: &Instance,
    heuristic: Heuristic,
    batches: &[&[TaskId]],
    threads: usize,
) -> Result<Vec<(Schedule, Time)>> {
    run_indexed_pool(batches.len(), threads, |index| {
        let sub = instance.sub_instance(batches[index])?;
        let sub_schedule = run_heuristic(&sub, heuristic)?;
        let makespan = sub_schedule.makespan(&sub);
        Ok((sub_schedule, makespan))
    })
}

/// Sum over batches of the OMIM lower bound: the reference value the paper
/// normalizes against in the batched experiment (each batch cannot beat its
/// own infinite-memory optimum).
pub fn batched_omim(instance: &Instance, config: BatchConfig) -> Result<Time> {
    if config.batch_size == 0 {
        return Err(CoreError::Infeasible("batch size must be positive".into()));
    }
    let ids = instance.task_ids();
    let mut total = Time::ZERO;
    for batch in ids.chunks(config.batch_size) {
        let sub = instance.sub_instance(batch)?;
        total += dts_flowshop::johnson::johnson_makespan(&sub);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::feasibility::is_feasible;
    use dts_core::instances::random_instance_decoupled_memory;
    use dts_flowshop::johnson::johnson_makespan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batched_schedule_is_feasible_and_complete() {
        let mut rng = StdRng::seed_from_u64(7);
        let inst = random_instance_decoupled_memory(&mut rng, 57, 1.3);
        for h in [Heuristic::OOSIM, Heuristic::MAMR, Heuristic::OOLCMR] {
            let sched = run_heuristic_batched(&inst, h, BatchConfig { batch_size: 10 }).unwrap();
            assert_eq!(sched.len(), inst.len());
            assert!(is_feasible(&inst, &sched), "{h}");
        }
    }

    #[test]
    fn batching_never_improves_over_whole_instance_lower_bound() {
        let mut rng = StdRng::seed_from_u64(8);
        let inst = random_instance_decoupled_memory(&mut rng, 40, 1.5);
        let omim = johnson_makespan(&inst);
        let sched =
            run_heuristic_batched(&inst, Heuristic::OOMAMR, BatchConfig { batch_size: 8 }).unwrap();
        assert!(sched.makespan(&inst) >= omim);
        // ... and at least the batched OMIM reference.
        let batched_bound = batched_omim(&inst, BatchConfig { batch_size: 8 }).unwrap();
        assert!(sched.makespan(&inst) >= batched_bound);
        assert!(batched_bound >= omim);
    }

    #[test]
    fn one_big_batch_equals_unbatched() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = random_instance_decoupled_memory(&mut rng, 25, 1.4);
        for h in [Heuristic::IOCMS, Heuristic::SCMR, Heuristic::OOSCMR] {
            let batched =
                run_heuristic_batched(&inst, h, BatchConfig { batch_size: 1000 }).unwrap();
            let plain = run_heuristic(&inst, h).unwrap();
            assert_eq!(batched.makespan(&inst), plain.makespan(&inst), "{h}");
        }
    }

    #[test]
    fn smaller_batches_generally_cost_more() {
        // Batching reduces the scheduler's look-ahead; with batch size 1 the
        // schedule is fully sequential and must be the worst of the three.
        let mut rng = StdRng::seed_from_u64(10);
        let inst = random_instance_decoupled_memory(&mut rng, 30, 1.6);
        let tiny = run_heuristic_batched(&inst, Heuristic::OOLCMR, BatchConfig { batch_size: 1 })
            .unwrap()
            .makespan(&inst);
        let whole =
            run_heuristic_batched(&inst, Heuristic::OOLCMR, BatchConfig { batch_size: 1000 })
                .unwrap()
                .makespan(&inst);
        assert!(tiny >= whole);
        // Batch size 1 is exactly the sequential sum of all task times.
        let stats = inst.stats();
        assert_eq!(tiny, stats.sequential_upper_bound());
    }

    #[test]
    fn pooled_batches_match_sequential_exactly() {
        // The parallel path must reproduce the sequential schedule entry for
        // entry (same tasks, same instants), whatever the worker count.
        let mut rng = StdRng::seed_from_u64(12);
        for n_tasks in [1usize, 9, 33, 70] {
            let inst = random_instance_decoupled_memory(&mut rng, n_tasks, 1.3);
            for h in [Heuristic::OS, Heuristic::MAMR, Heuristic::OOLCMR] {
                for batch_size in [1usize, 7, 100] {
                    let config = BatchConfig { batch_size };
                    let sequential = run_heuristic_batched_pooled(&inst, h, config, 1).unwrap();
                    for threads in [2usize, 5, 64] {
                        let pooled =
                            run_heuristic_batched_pooled(&inst, h, config, threads).unwrap();
                        assert_eq!(
                            sequential, pooled,
                            "{h} diverged: n={n_tasks} batch={batch_size} threads={threads}"
                        );
                    }
                    let auto = run_heuristic_batched(&inst, h, config).unwrap();
                    assert_eq!(sequential, auto, "{h} auto-threaded run diverged");
                }
            }
        }
    }

    #[test]
    fn pooled_batches_report_the_earliest_failing_batch() {
        // Task 5 (batch #1 of size-4 batches) exceeds the capacity; both the
        // sequential and the pooled run must surface that batch's error.
        let json = format!(
            r#"{{
                "tasks": [{}],
                "capacity": 4,
                "label": "malformed"
            }}"#,
            (0..12)
                .map(|i| format!(
                    r#"{{"name": "t{i}", "comm_time": 1000, "comp_time": 1000, "mem": {}}}"#,
                    if i == 5 { 9 } else { 2 }
                ))
                .collect::<Vec<_>>()
                .join(",")
        );
        let inst: Instance = serde_json::from_str(&json).unwrap();
        let config = BatchConfig { batch_size: 4 };
        let sequential =
            run_heuristic_batched_pooled(&inst, Heuristic::LCMR, config, 1).unwrap_err();
        let pooled = run_heuristic_batched_pooled(&inst, Heuristic::LCMR, config, 4).unwrap_err();
        assert_eq!(sequential, pooled);
        assert!(matches!(
            pooled,
            CoreError::TaskExceedsCapacity {
                task: TaskId(1),
                ..
            }
        ));
    }

    #[test]
    fn zero_batch_size_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let inst = random_instance_decoupled_memory(&mut rng, 5, 1.5);
        assert!(
            run_heuristic_batched(&inst, Heuristic::OS, BatchConfig { batch_size: 0 }).is_err()
        );
        assert!(batched_omim(&inst, BatchConfig { batch_size: 0 }).is_err());
    }
}
