//! Equivalence suite: the incremental engine must produce byte-identical
//! schedules to the original full-rescan implementation.
//!
//! The reference model below is a line-for-line port of the seed engine
//! (`active: Vec<(Time, MemSize)>` rescanned in full by every memory query,
//! `Vec::remove(0)`/`retain` pending sets). The production engine replaced
//! those with a running `held` counter, a pruned release queue and
//! swap-removal; these tests pin the refactor to the exact seed behavior on
//! the paper fixtures (Tables 3–5 / Figs. 4–6) and on seeded random
//! instances.

use dts_core::instances::{
    random_instance, random_instance_decoupled_memory, table3, table4, table5, RandomInstanceConfig,
};
use dts_core::prelude::*;
use dts_flowshop::johnson::johnson_order;
use dts_heuristics::corrected::{run_corrected, run_corrected_with_order};
use dts_heuristics::dynamic::run_dynamic;
use dts_heuristics::{CorrectionCriterion, SelectionCriterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The seed implementation of `EngineState`, kept verbatim as the oracle.
mod reference {
    use dts_core::prelude::*;

    pub struct EngineState {
        pub link_free: Time,
        pub cpu_free: Time,
        active: Vec<(Time, MemSize)>,
        capacity: MemSize,
        pub schedule: Schedule,
    }

    impl EngineState {
        pub fn new(instance: &Instance) -> Self {
            EngineState {
                link_free: Time::ZERO,
                cpu_free: Time::ZERO,
                active: Vec::new(),
                capacity: instance.capacity(),
                schedule: Schedule::with_capacity(instance.len()),
            }
        }

        pub fn held_at(&self, t: Time) -> MemSize {
            self.active
                .iter()
                .filter(|(end, _)| *end > t)
                .map(|(_, mem)| *mem)
                .sum()
        }

        pub fn fits_at(&self, task: &Task, t: Time) -> bool {
            self.held_at(t).saturating_add(task.mem) <= self.capacity
        }

        pub fn induced_cpu_idle(&self, task: &Task, t: Time) -> Time {
            (t + task.comm_time).saturating_sub(self.cpu_free)
        }

        pub fn next_release_after(&self, t: Time) -> Option<Time> {
            self.active
                .iter()
                .map(|(end, _)| *end)
                .filter(|end| *end > t)
                .min()
        }

        pub fn commit(&mut self, instance: &Instance, id: TaskId, t: Time) -> Time {
            let task = instance.task(id);
            let comm_start = t;
            let comm_end = comm_start + task.comm_time;
            let comp_start = comm_end.max(self.cpu_free);
            let comp_end = comp_start + task.comp_time;
            self.link_free = comm_end;
            self.cpu_free = comp_end;
            self.active.push((comp_end, task.mem));
            self.schedule.push(ScheduleEntry {
                task: id,
                comm_start,
                comp_start,
            });
            comp_end
        }
    }

    pub fn filter_minimum_cpu_idle(
        instance: &Instance,
        state: &EngineState,
        candidates: &[TaskId],
        t: Time,
    ) -> Vec<TaskId> {
        let min_idle = candidates
            .iter()
            .map(|&id| state.induced_cpu_idle(instance.task(id), t))
            .min();
        match min_idle {
            None => Vec::new(),
            Some(min) => candidates
                .iter()
                .copied()
                .filter(|&id| state.induced_cpu_idle(instance.task(id), t) == min)
                .collect(),
        }
    }

    pub fn run_dynamic(
        instance: &Instance,
        criterion: dts_heuristics::SelectionCriterion,
    ) -> Schedule {
        let mut state = EngineState::new(instance);
        let mut remaining: Vec<TaskId> = instance.task_ids();
        let mut now = Time::ZERO;
        while !remaining.is_empty() {
            now = now.max(state.link_free);
            let fitting: Vec<TaskId> = remaining
                .iter()
                .copied()
                .filter(|id| state.fits_at(instance.task(*id), now))
                .collect();
            if fitting.is_empty() {
                now = state
                    .next_release_after(now)
                    .expect("reference: some task holds memory");
                continue;
            }
            let best_idle = filter_minimum_cpu_idle(instance, &state, &fitting, now);
            let chosen = criterion
                .choose(instance, &best_idle)
                .expect("reference: candidates are non-empty");
            state.commit(instance, chosen, now);
            remaining.retain(|id| *id != chosen);
        }
        state.schedule
    }

    pub fn run_corrected_with_order(
        instance: &Instance,
        order: &[TaskId],
        selection: dts_heuristics::SelectionCriterion,
    ) -> Schedule {
        let mut state = EngineState::new(instance);
        let mut pending: Vec<TaskId> = order.to_vec();
        let mut now = Time::ZERO;
        while !pending.is_empty() {
            now = now.max(state.link_free);
            let next = pending[0];
            if state.fits_at(instance.task(next), now) {
                state.commit(instance, next, now);
                pending.remove(0);
                continue;
            }
            let fitting: Vec<TaskId> = pending
                .iter()
                .copied()
                .filter(|id| state.fits_at(instance.task(*id), now))
                .collect();
            if fitting.is_empty() {
                now = state
                    .next_release_after(now)
                    .expect("reference: some task holds memory");
                continue;
            }
            let best_idle = filter_minimum_cpu_idle(instance, &state, &fitting, now);
            let chosen = selection
                .choose(instance, &best_idle)
                .expect("reference: candidates are non-empty");
            state.commit(instance, chosen, now);
            pending.retain(|id| *id != chosen);
        }
        state.schedule
    }
}

const SELECTIONS: [SelectionCriterion; 3] = [
    SelectionCriterion::LargestCommunication,
    SelectionCriterion::SmallestCommunication,
    SelectionCriterion::MaximumAcceleration,
];

const CORRECTIONS: [CorrectionCriterion; 3] = [
    CorrectionCriterion::LargestCommunication,
    CorrectionCriterion::SmallestCommunication,
    CorrectionCriterion::MaximumAcceleration,
];

/// Asserts that both engines produce the exact same schedule (same comm and
/// comp orders and instants, hence the same makespan) on `instance`.
fn assert_engines_agree(instance: &Instance, context: &str) {
    for criterion in SELECTIONS {
        let new = run_dynamic(instance, criterion).expect("dynamic heuristic runs");
        let old = reference::run_dynamic(instance, criterion);
        assert_eq!(new, old, "dynamic {criterion:?} diverged on {context}");
    }
    for (correction, selection) in CORRECTIONS.into_iter().zip(SELECTIONS) {
        let johnson = johnson_order(instance);
        let new = run_corrected(instance, correction).expect("corrected heuristic runs");
        let old = reference::run_corrected_with_order(instance, &johnson, selection);
        assert_eq!(new, old, "corrected {correction:?} diverged on {context}");

        // Also exercise a non-Johnson precomputed order (submission order).
        let submission = instance.task_ids();
        let new = run_corrected_with_order(instance, &submission, correction)
            .expect("corrected-with-order heuristic runs");
        let old = reference::run_corrected_with_order(instance, &submission, selection);
        assert_eq!(
            new, old,
            "corrected {correction:?} on submission order diverged on {context}"
        );
    }
}

#[test]
fn engines_agree_on_paper_fixtures() {
    for instance in [table3(), table4(), table5()] {
        assert_engines_agree(&instance, &instance.label.clone());
    }
}

#[test]
fn engines_agree_on_seeded_random_instances() {
    // ≥ 50 instances over a grid of sizes and capacity tightness, both with
    // paper-convention memory (mem = comm volume) and decoupled memory.
    let mut count = 0;
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        for n_tasks in [1usize, 2, 5, 12, 30] {
            for factor in [1.0, 1.2, 1.6] {
                let coupled = random_instance(
                    &mut rng,
                    RandomInstanceConfig {
                        n_tasks,
                        capacity_factor: factor,
                        ..Default::default()
                    },
                );
                assert_engines_agree(&coupled, &format!("coupled seed={seed} n={n_tasks}"));
                let decoupled = random_instance_decoupled_memory(&mut rng, n_tasks, factor);
                assert_engines_agree(&decoupled, &format!("decoupled seed={seed} n={n_tasks}"));
                count += 2;
            }
        }
    }
    assert!(count >= 50, "the suite must cover at least 50 instances");
}

#[test]
fn engines_agree_on_tie_heavy_instances() {
    // Tiny value domains force many tasks to share communication times,
    // acceleration ratios and memory footprints, so the id tie-breaking of
    // the memory-indexed candidate selection is the only thing separating
    // candidates. Zero-communication tasks (infinite ratio, and ratio 1 for
    // zero-comm/zero-comp tasks) are included on purpose.
    let mut rng = StdRng::seed_from_u64(7777);
    for round in 0..40 {
        let n = rng.gen_range(1usize..=16);
        let capacity = rng.gen_range(4u64..=8);
        let mut builder = dts_core::InstanceBuilder::new()
            .capacity(MemSize::from_bytes(capacity))
            .label(format!("tie-heavy-{round}"));
        for i in 0..n {
            builder = builder.task(Task::new(
                format!("t{i}"),
                Time::units_int(rng.gen_range(0..=2u64)),
                Time::units_int(rng.gen_range(0..=2u64)),
                MemSize::from_bytes(rng.gen_range(0..=4u64)),
            ));
        }
        let instance = builder.build().expect("mem <= 4 fits capacity >= 4");
        assert_engines_agree(&instance, &format!("tie-heavy round {round}"));
    }
}

#[test]
fn engines_agree_on_transfer_bound_instances() {
    // The adversarial domains of the execution-model layer: communication
    // dominates computation (so the link is the bottleneck) and capacity
    // slack is tight. The explicit engine must still match the seed
    // reference exactly on them — the model-aware refactor of
    // `EngineState::commit` may not perturb the pinned baseline.
    use microcheck::Gen;

    let mut rng = StdRng::seed_from_u64(4242);
    let transfer_bound = dts_core::testgen::transfer_bound_instance_gen(1..=20);
    let tie_heavy = dts_core::testgen::transfer_bound_tie_heavy_instance_gen(1..=20);
    for round in 0..30 {
        let instance = transfer_bound.generate(&mut rng).build();
        assert_engines_agree(&instance, &format!("transfer-bound round {round}"));
        let instance = tie_heavy.generate(&mut rng).build();
        assert_engines_agree(
            &instance,
            &format!("transfer-bound tie-heavy round {round}"),
        );
    }
}

#[test]
fn sequence_executor_agrees_with_reference_on_random_orders() {
    // `simulate_sequence` swapped its front-popped Vec for a VecDeque; replay
    // shuffled orders against a naive full-scan executor.
    use rand::prelude::SliceRandom;

    fn naive_simulate(instance: &Instance, order: &[TaskId]) -> Schedule {
        let capacity = instance.capacity();
        let mut schedule = Schedule::with_capacity(order.len());
        let mut link_free = Time::ZERO;
        let mut cpu_free = Time::ZERO;
        let mut active: Vec<(Time, u64)> = Vec::new();
        for &id in order {
            let task = instance.task(id);
            let need = task.mem.bytes();
            let mut start = link_free;
            // Earliest start >= link_free at which the task fits, scanning
            // release instants.
            loop {
                let held: u64 = active
                    .iter()
                    .filter(|(end, _)| *end > start)
                    .map(|(_, mem)| mem)
                    .sum();
                if held + need <= capacity.bytes() {
                    break;
                }
                start = active
                    .iter()
                    .map(|(end, _)| *end)
                    .filter(|end| *end > start)
                    .min()
                    .expect("some release must be pending");
            }
            let comm_start = start;
            let comm_end = comm_start + task.comm_time;
            let comp_start = comm_end.max(cpu_free);
            let comp_end = comp_start + task.comp_time;
            link_free = comm_end;
            cpu_free = comp_end;
            active.push((comp_end, need));
            schedule.push(ScheduleEntry {
                task: id,
                comm_start,
                comp_start,
            });
        }
        schedule
    }

    let mut rng = StdRng::seed_from_u64(2024);
    for instance in [table3(), table4(), table5()] {
        let mut order = instance.task_ids();
        for _ in 0..20 {
            order.shuffle(&mut rng);
            let fast = dts_core::simulate::simulate_sequence(&instance, &order)
                .expect("valid order simulates");
            assert_eq!(
                fast,
                naive_simulate(&instance, &order),
                "{}",
                instance.label
            );
        }
    }
    for _ in 0..30 {
        let instance = random_instance_decoupled_memory(&mut rng, 25, 1.25);
        let mut order = instance.task_ids();
        order.shuffle(&mut rng);
        let fast = dts_core::simulate::simulate_sequence(&instance, &order)
            .expect("valid order simulates");
        assert_eq!(fast, naive_simulate(&instance, &order));
    }
}

#[test]
fn oversized_task_is_rejected_by_dynamic_and_corrected_loops() {
    // A task bigger than the whole memory (possible only via deserialized
    // instances) must surface as an error, not as a hang or panic.
    let json = r#"{
        "tasks": [
            {"name": "ok", "comm_time": 1000, "comp_time": 1000, "mem": 2},
            {"name": "huge", "comm_time": 2000, "comp_time": 1000, "mem": 9}
        ],
        "capacity": 4,
        "label": "malformed"
    }"#;
    let instance: Instance = serde_json::from_str(json).expect("shape is valid JSON");
    for criterion in SELECTIONS {
        assert!(matches!(
            run_dynamic(&instance, criterion),
            Err(CoreError::TaskExceedsCapacity {
                task: TaskId(1),
                ..
            })
        ));
    }
    for correction in CORRECTIONS {
        assert!(matches!(
            run_corrected_with_order(&instance, &instance.task_ids(), correction),
            Err(CoreError::TaskExceedsCapacity {
                task: TaskId(1),
                ..
            })
        ));
    }
}

#[test]
fn u64_scale_memory_never_overlaps_the_full_memory_task() {
    // Every task fits the capacity on its own, but the MAX-byte task plus
    // any other overflows the exact sum. The engine must treat the overflow
    // as "does not fit" (matching `simulate_sequence`) and keep the small
    // tasks strictly outside the big task's active interval, instead of a
    // saturating comparison silently admitting them concurrently.
    let huge = u64::MAX;
    let json = format!(
        r#"{{
            "tasks": [
                {{"name": "a", "comm_time": 1000, "comp_time": 1000, "mem": {huge}}},
                {{"name": "b", "comm_time": 1000, "comp_time": 1000, "mem": 2}},
                {{"name": "c", "comm_time": 1000, "comp_time": 1000, "mem": 2}}
            ],
            "capacity": {huge},
            "label": "u64-scale"
        }}"#
    );
    let instance: Instance = serde_json::from_str(&json).expect("shape is valid JSON");
    let active_interval = |sched: &Schedule, id: TaskId| {
        let entry = sched.entry(id).expect("task is scheduled");
        (
            entry.comm_start,
            entry.comp_start + instance.task(id).comp_time,
        )
    };
    let mut schedules: Vec<(String, Schedule)> = Vec::new();
    for criterion in SELECTIONS {
        let sched = run_dynamic(&instance, criterion).expect("dynamic heuristic runs");
        schedules.push((format!("dynamic {criterion:?}"), sched));
    }
    for correction in CORRECTIONS {
        let sched = run_corrected_with_order(&instance, &instance.task_ids(), correction)
            .expect("corrected heuristic runs");
        schedules.push((format!("corrected {correction:?}"), sched));
    }
    for (context, sched) in schedules {
        assert_eq!(sched.len(), 3, "{context}");
        let (big_start, big_end) = active_interval(&sched, TaskId(0));
        for id in [TaskId(1), TaskId(2)] {
            let (start, end) = active_interval(&sched, id);
            assert!(
                end <= big_start || start >= big_end,
                "{context}: task {id} overlaps the full-memory task"
            );
        }
    }
}
