//! Execution-model behavior of the decision engines.
//!
//! Three families of checks:
//!
//! * **degenerate equivalence** — `Streams { k: 1 }` must produce the
//!   byte-identical schedule of the explicit model for every heuristic
//!   (the one-stream channel pool collapses to the half-duplex link);
//! * **behavioral divergence** — duplex and multi-stream execution must
//!   actually change the dynamic decisions on transfer-bound instances,
//!   not just re-time the same order (earlier releases open different
//!   candidate sets);
//! * **feasibility and dominance** — every model's schedule respects the
//!   memory capacity, and the overlap models never end later than the
//!   explicit baseline under the *same* decision rule and order-free
//!   dynamic selection.

use dts_core::memory::MemoryProfile;
use dts_core::prelude::*;
use dts_core::testgen;
use dts_heuristics::corrected::run_corrected_with_order_model;
use dts_heuristics::dynamic::run_dynamic_with;
use dts_heuristics::{
    run_heuristic, run_heuristic_with, CorrectionCriterion, Heuristic, SelectionCriterion,
};
use microcheck::Gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SELECTIONS: [SelectionCriterion; 3] = [
    SelectionCriterion::LargestCommunication,
    SelectionCriterion::SmallestCommunication,
    SelectionCriterion::MaximumAcceleration,
];

fn transfer_bound_instances(seed: u64, rounds: usize) -> Vec<Instance> {
    let gen = testgen::transfer_bound_instance_gen(2..=18);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rounds)
        .map(|_| gen.generate(&mut rng).build())
        .collect()
}

#[test]
fn single_stream_matches_explicit_for_every_heuristic() {
    for (i, instance) in transfer_bound_instances(11, 25).iter().enumerate() {
        for &heuristic in &Heuristic::ALL {
            let explicit = run_heuristic_with(instance, heuristic, ExecutionModel::Explicit)
                .expect("explicit run succeeds");
            let one_stream =
                run_heuristic_with(instance, heuristic, ExecutionModel::Streams { k: 1 })
                    .expect("one-stream run succeeds");
            assert_eq!(explicit, one_stream, "{heuristic} diverged on round {i}");
        }
    }
}

#[test]
fn plain_entry_points_honor_the_instance_model() {
    // `run_heuristic` (no model argument) must pick up a model attached to
    // the instance — the trace → instance → heuristic chain the CLI uses.
    for instance in transfer_bound_instances(23, 10) {
        let duplex_instance = instance
            .clone()
            .with_model(ExecutionModel::Duplex)
            .expect("duplex is valid");
        for &heuristic in &[Heuristic::LCMR, Heuristic::OOSIM, Heuristic::OOMAMR] {
            let implicit_route =
                run_heuristic(&duplex_instance, heuristic).expect("stamped run succeeds");
            let explicit_route = run_heuristic_with(&instance, heuristic, ExecutionModel::Duplex)
                .expect("explicit-model run succeeds");
            assert_eq!(implicit_route, explicit_route, "{heuristic}");
        }
    }
}

#[test]
fn overlap_models_change_dynamic_decisions_on_transfer_bound_instances() {
    // Overlap is not mere re-timing: on a transfer-bound workload the
    // earlier memory releases of the duplex/stream models must reshape the
    // *order* the dynamic heuristics choose, on a healthy fraction of
    // instances. (Any single instance may be insensitive; all of them
    // being insensitive would mean the models don't reach the decisions.)
    let instances = transfer_bound_instances(37, 40);
    for model in [ExecutionModel::Duplex, ExecutionModel::Streams { k: 3 }] {
        let mut diverged = 0usize;
        for instance in &instances {
            for criterion in SELECTIONS {
                let explicit = run_dynamic_with(instance, criterion, ExecutionModel::Explicit)
                    .expect("explicit run succeeds");
                let overlapped =
                    run_dynamic_with(instance, criterion, model).expect("overlap run succeeds");
                if explicit.comm_order() != overlapped.comm_order() {
                    diverged += 1;
                }
            }
        }
        assert!(
            diverged >= instances.len() / 4,
            "{model}: only {diverged} of {} runs changed their decision order",
            3 * instances.len()
        );
    }
}

#[test]
fn dynamic_overlap_models_never_lose_to_explicit() {
    // The dynamic heuristics re-decide at every link-free instant, so the
    // dominance argument for fixed orders does not apply verbatim; it
    // still holds empirically across the adversarial domain, and a
    // violation would flag a commit-timing bug.
    for (i, instance) in transfer_bound_instances(53, 40).iter().enumerate() {
        for criterion in SELECTIONS {
            let explicit = run_dynamic_with(instance, criterion, ExecutionModel::Explicit)
                .expect("explicit run succeeds")
                .makespan(instance);
            for model in [ExecutionModel::Duplex, ExecutionModel::Streams { k: 4 }] {
                let overlapped = run_dynamic_with(instance, criterion, model)
                    .expect("overlap run succeeds")
                    .makespan(instance);
                assert!(
                    overlapped <= explicit,
                    "round {i} {criterion:?}: {model} {overlapped} > explicit {explicit}"
                );
            }
        }
    }
}

#[test]
fn all_models_stay_memory_feasible_through_every_engine() {
    let models = [
        ExecutionModel::Explicit,
        ExecutionModel::Duplex,
        ExecutionModel::Streams { k: 2 },
        ExecutionModel::IMPLICIT_FULL,
    ];
    for instance in transfer_bound_instances(71, 20) {
        for model in models {
            for criterion in SELECTIONS {
                let schedule =
                    run_dynamic_with(&instance, criterion, model).expect("dynamic run succeeds");
                assert_eq!(schedule.len(), instance.len());
                let profile = MemoryProfile::of_schedule(&instance, &schedule);
                assert!(
                    profile.peak() <= instance.capacity(),
                    "dynamic {criterion:?} under {model} violates memory"
                );
            }
            let schedule = run_corrected_with_order_model(
                &instance,
                &instance.task_ids(),
                CorrectionCriterion::MaximumAcceleration,
                model,
            )
            .expect("corrected run succeeds");
            let profile = MemoryProfile::of_schedule(&instance, &schedule);
            assert!(
                profile.peak() <= instance.capacity(),
                "corrected under {model} violates memory"
            );
        }
    }
}

#[test]
fn invalid_models_error_cleanly_through_every_entry_point() {
    let instance = dts_core::instances::table4();
    let zero_streams = ExecutionModel::Streams { k: 0 };
    assert!(matches!(
        run_dynamic_with(
            &instance,
            SelectionCriterion::LargestCommunication,
            zero_streams
        ),
        Err(CoreError::InvalidExecutionModel(_))
    ));
    assert!(matches!(
        run_corrected_with_order_model(
            &instance,
            &instance.task_ids(),
            CorrectionCriterion::LargestCommunication,
            zero_streams,
        ),
        Err(CoreError::InvalidExecutionModel(_))
    ));
    assert!(matches!(
        run_heuristic_with(&instance, Heuristic::OOSIM, zero_streams),
        Err(CoreError::InvalidExecutionModel(_))
    ));
}
