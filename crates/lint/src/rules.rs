//! The five project lints, run over scrubbed code (see [`crate::scrub`]).
//!
//! * **L001** — `.unwrap()`, `.expect(…)` and `panic!` in non-test
//!   library code. Test modules (`#[cfg(test)]`), `#[test]` functions and
//!   the `tests/`/`benches/`/`examples/` trees are exempt.
//! * **L002** — unchecked `+`/`*` where an operand is a memory-sum-ish
//!   identifier (`…mem…`, `…bytes…`, `…footprint…`): such sums must use
//!   `checked_add`/`checked_mul`, since capacity arithmetic overflowing
//!   silently is exactly how an infeasible schedule gets accepted.
//! * **L003** — `Ordering::Relaxed` on atomics: allowed only with an
//!   inline waiver naming the reason, because a relaxed flag guarding
//!   published data is the message-passing bug the model checker's
//!   litmus test demonstrates.
//! * **L004** — wall-clock or environment reads (`Instant::now`,
//!   `SystemTime::now`, `env::var`, `env!`) inside the deterministic
//!   engine/simulate paths, which must stay replayable byte-for-byte.
//! * **L005** — direct `.comm_time` / `.comp_time` field reads inside the
//!   heuristic decision paths: task durations are owned by the cost-model
//!   layer (`dts_core::perfmodel`), which materializes them into the
//!   instance exactly once, so decision code must take them from the
//!   instance it was handed rather than re-deriving them ad hoc. Existing
//!   sites are ratcheted in the baseline; new ones need a waiver.
//!
//! Any rule can be waived for one site with a comment on the same line
//! or the line above: `// lint: allow(L00x) <reason>`. A waiver without
//! a reason does not count.

use crate::scrub::Scrubbed;

/// One lint finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id, e.g. `"L001"`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets at which `word` occurs with identifier boundaries.
fn word_positions(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(word) {
        let at = from + rel;
        let before_ok = line[..at].chars().next_back().is_none_or(|c| !is_ident(c));
        let after_ok = line[at + word.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

fn prev_non_space(line: &str, at: usize) -> Option<char> {
    line[..at].chars().rev().find(|c| !c.is_whitespace())
}

fn next_non_space(line: &str, at: usize) -> Option<char> {
    line[at..].chars().find(|c| !c.is_whitespace())
}

/// Lines covered by `#[cfg(test)]` / `#[test]` items, computed by brace
/// matching over the scrubbed code (so braces in strings never confuse
/// the depth counter).
fn test_exempt_lines(code: &[String]) -> Vec<bool> {
    let mut exempt = vec![false; code.len()];
    let mut depth = 0usize;
    let mut pending_attr = false;
    let mut regions: Vec<usize> = Vec::new(); // entry depths of exempt blocks
    for (line_no, line) in code.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if !regions.is_empty() {
                exempt[line_no] = true;
            }
            match c {
                '#' => {
                    // Read a `#[…]` attribute, brackets balanced.
                    let mut j = i + 1;
                    while j < chars.len() && chars[j].is_whitespace() {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'[') {
                        let mut level = 0usize;
                        let mut content = String::new();
                        while j < chars.len() {
                            match chars[j] {
                                '[' => level += 1,
                                ']' => {
                                    level -= 1;
                                    if level == 0 {
                                        break;
                                    }
                                }
                                other => content.push(other),
                            }
                            j += 1;
                        }
                        let norm: String = content.chars().filter(|c| !c.is_whitespace()).collect();
                        let cfg_test = norm.contains("cfg(")
                            && !word_positions(&norm, "test").is_empty()
                            && !norm.contains("not(test");
                        if norm == "test" || cfg_test {
                            pending_attr = true;
                        }
                        i = j;
                    }
                }
                '{' => {
                    if pending_attr {
                        regions.push(depth);
                        pending_attr = false;
                        exempt[line_no] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if regions.last() == Some(&depth) {
                        exempt[line_no] = true;
                        regions.pop();
                    }
                }
                ';' => {
                    // `#[cfg(test)] use …;` — attribute spent without a body.
                    pending_attr = false;
                }
                _ => {}
            }
            i += 1;
        }
    }
    exempt
}

fn has_waiver(scrubbed: &Scrubbed, line_no: usize, rule: &str) -> bool {
    let marker = format!("lint: allow({rule})");
    let check = |s: &String| {
        s.find(&marker)
            .is_some_and(|at| !s[at + marker.len()..].trim().is_empty())
    };
    if scrubbed.comments.get(line_no).is_some_and(check) {
        return true;
    }
    // Walk up through the contiguous comment block immediately above the
    // line, so a waiver can start a multi-line explanation.
    let mut k = line_no;
    while k > 0 {
        k -= 1;
        let comment_only = scrubbed.code.get(k).is_some_and(|c| c.trim().is_empty())
            && scrubbed
                .comments
                .get(k)
                .is_some_and(|c| !c.trim().is_empty());
        if !comment_only {
            return false;
        }
        if scrubbed.comments.get(k).is_some_and(check) {
            return true;
        }
    }
    false
}

fn memory_ish(ident: &str) -> bool {
    // Split the identifier into snake_case / CamelCase parts, so
    // `used_mem`, `MemSize` and `bytesPerTask` all match while `member`
    // or `remember` do not.
    let mut parts: Vec<String> = Vec::new();
    let mut cur = String::new();
    for c in ident.chars() {
        if c == '_' || c.is_uppercase() {
            if !cur.is_empty() {
                parts.push(std::mem::take(&mut cur));
            }
            if c != '_' {
                cur.push(c.to_ascii_lowercase());
            }
        } else {
            cur.push(c);
        }
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
        .iter()
        .any(|p| matches!(p.as_str(), "mem" | "memory" | "bytes" | "footprint"))
}

/// Last identifier ending at or before byte `at`.
fn ident_before(line: &str, at: usize) -> Option<String> {
    let head = line[..at].trim_end();
    let end = head.len();
    let start = head
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident(*c))
        .last()
        .map(|(i, _)| i)?;
    let ident = &head[start..end];
    (!ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then(|| ident.to_string())
}

/// First identifier starting at or after byte `at`.
fn ident_after(line: &str, at: usize) -> Option<String> {
    let tail = line[at..].trim_start();
    let end = tail
        .char_indices()
        .take_while(|(_, c)| is_ident(*c))
        .last()
        .map(|(i, c)| i + c.len_utf8())?;
    Some(tail[..end].to_string())
}

/// Runs every rule over one scrubbed file. `in_deterministic_path`
/// enables L004 and `in_decision_path` enables L005 (the caller decides
/// both from the file's path).
pub fn check_file(
    file: &str,
    scrubbed: &Scrubbed,
    in_deterministic_path: bool,
    in_decision_path: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let exempt = test_exempt_lines(&scrubbed.code);
    for (line_no, line) in scrubbed.code.iter().enumerate() {
        let mut push = |rule: &'static str, message: String| {
            if !has_waiver(scrubbed, line_no, rule) {
                out.push(Violation {
                    file: file.to_string(),
                    line: line_no + 1,
                    rule,
                    message,
                });
            }
        };

        if !exempt[line_no] {
            // L001: panicking calls in library code.
            for method in ["unwrap", "expect"] {
                for at in word_positions(line, method) {
                    if prev_non_space(line, at) == Some('.')
                        && next_non_space(line, at + method.len()) == Some('(')
                    {
                        push(
                            "L001",
                            format!("`.{method}(…)` in non-test library code; return a `Result` or handle the `None`"),
                        );
                    }
                }
            }
            for at in word_positions(line, "panic") {
                if next_non_space(line, at + "panic".len()) == Some('!')
                    && prev_non_space(line, at) != Some(':')
                {
                    push(
                        "L001",
                        "`panic!` in non-test library code; return an error instead".to_string(),
                    );
                }
            }
        }

        // L002: unchecked arithmetic on memory sums.
        for (at, c) in line.char_indices() {
            if c != '+' && c != '*' {
                continue;
            }
            // Binary uses only: the left neighbour must end an operand.
            if !prev_non_space(line, at).is_some_and(|p| is_ident(p) || p == ')' || p == ']') {
                continue;
            }
            // Skip `+=`-style? No: compound assignment is still unchecked.
            // But skip `**`/`++` noise and `*/`-like remnants.
            let operand_l = ident_before(line, at);
            let operand_r = ident_after(line, at + 1);
            let involved = [operand_l, operand_r]
                .into_iter()
                .flatten()
                .any(|id| memory_ish(&id));
            if involved {
                push(
                    "L002",
                    format!("unchecked `{c}` on a memory-sum expression; use `checked_add`/`checked_mul` so capacity arithmetic cannot overflow silently"),
                );
            }
        }

        // L003: relaxed atomic ordering without a waiver.
        for at in word_positions(line, "Relaxed") {
            if line[..at].trim_end().ends_with("::") {
                push(
                    "L003",
                    "`Ordering::Relaxed` without an inline `// lint: allow(L003) <reason>` waiver; relaxed flags that guard published data are the message-passing bug".to_string(),
                );
            }
        }

        // L004: nondeterminism in the deterministic engine/simulate paths.
        if in_deterministic_path && !exempt[line_no] {
            for needle in [
                "Instant::now",
                "SystemTime::now",
                "env::var",
                "env!",
                "var_os",
            ] {
                if line.contains(needle) {
                    push(
                        "L004",
                        format!("`{needle}` inside a deterministic engine/simulate path; these modules must be replayable byte-for-byte"),
                    );
                }
            }
        }

        // L005: raw duration field reads in heuristic decision paths.
        if in_decision_path && !exempt[line_no] {
            for field in ["comm_time", "comp_time"] {
                for at in word_positions(line, field) {
                    if prev_non_space(line, at) == Some('.') {
                        push(
                            "L005",
                            format!("direct `.{field}` read in a heuristic decision path; durations are owned by the cost-model layer (`dts_core::perfmodel`) and are materialized into the instance once — take them from there"),
                        );
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn run(source: &str) -> Vec<Violation> {
        check_file("x.rs", &scrub(source), false, false)
    }

    fn rules(source: &str) -> Vec<&'static str> {
        run(source).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn l001_catches_unwrap_expect_panic_but_not_strings_or_tests() {
        assert_eq!(rules("let x = y.unwrap();\n"), vec!["L001"]);
        assert_eq!(rules("let x = y.expect(\"m\");\n"), vec!["L001"]);
        assert_eq!(rules("panic!(\"boom\");\n"), vec!["L001"]);
        assert!(rules("let s = \"call .unwrap() and panic!\";\n").is_empty());
        assert!(rules("// a comment about .unwrap()\n").is_empty());
        assert!(rules("let x = y.unwrap_or(0);\n").is_empty());
        assert!(rules("#[cfg(test)]\nmod tests {\n  fn f() { x.unwrap(); }\n}\n").is_empty());
        assert!(rules("#[test]\nfn t() { x.unwrap(); }\n").is_empty());
        // Code after the test module is scanned again.
        assert_eq!(
            rules(
                "#[cfg(test)]\nmod tests {\n  fn f() { x.unwrap(); }\n}\nfn g() { y.unwrap(); }\n"
            ),
            vec!["L001"]
        );
    }

    #[test]
    fn l002_catches_memory_sums_only() {
        assert_eq!(rules("let total = used_mem + task_mem;\n"), vec!["L002"]);
        assert_eq!(rules("let b = n * bytes_per_task;\n"), vec!["L002"]);
        assert!(rules("let t = time_a + time_b;\n").is_empty());
        assert!(rules("let m = base_mem.checked_add(extra_mem);\n").is_empty());
        assert!(
            rules("let p = *mem_ref;\n").is_empty(),
            "unary deref is not arithmetic"
        );
    }

    #[test]
    fn l003_requires_a_reasoned_waiver() {
        assert_eq!(rules("flag.load(Ordering::Relaxed);\n"), vec!["L003"]);
        assert!(rules("// lint: allow(L003) claim counter, RMW order suffices\nflag.load(Ordering::Relaxed);\n").is_empty());
        // The waiver may start a multi-line comment block.
        assert!(rules(
            "// lint: allow(L003) claim counter only; the RMW modification\n// order alone makes claims unique.\nflag.load(Ordering::Relaxed);\n"
        )
        .is_empty());
        assert!(
            rules("flag.load(Ordering::Relaxed); // lint: allow(L003) counter only\n").is_empty()
        );
        // A waiver with no reason does not count.
        assert_eq!(
            rules("// lint: allow(L003)\nflag.load(Ordering::Relaxed);\n"),
            vec!["L003"]
        );
        assert!(rules("flag.load(Ordering::Acquire);\n").is_empty());
    }

    #[test]
    fn l004_only_fires_in_deterministic_paths() {
        let source = "let t = Instant::now();\nlet v = std::env::var(\"X\");\n";
        assert!(check_file("x.rs", &scrub(source), false, false).is_empty());
        let hits = check_file("engine.rs", &scrub(source), true, false);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|v| v.rule == "L004"));
    }

    #[test]
    fn l005_only_fires_on_duration_field_reads_in_decision_paths() {
        let source = "let c = task.comm_time + task.comp_time;\n";
        assert!(check_file("x.rs", &scrub(source), false, false).is_empty());
        let hits = check_file("oosim.rs", &scrub(source), false, true);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|v| v.rule == "L005"));
        // Constructor-style field *writes* and bare identifiers are not
        // field reads.
        let benign = "Task { comm_time, comp_time: t }\nlet comm_time = x;\n";
        assert!(check_file("oosim.rs", &scrub(benign), false, true).is_empty());
        // A reasoned waiver silences one site.
        let waived =
            "// lint: allow(L005) tie-break only, never a duration estimate\nlet c = task.comm_time;\n";
        assert!(check_file("oosim.rs", &scrub(waived), false, true).is_empty());
    }
}
