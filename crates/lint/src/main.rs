//! `dts-lint` — project-specific lints with a ratcheted baseline.
//!
//! ```text
//! cargo run -p dts-lint                        # report every current violation
//! cargo run -p dts-lint -- --check             # diff against lint-baseline.json (CI gate)
//! cargo run -p dts-lint -- --update-baseline   # regenerate lint-baseline.json
//! ```
//!
//! The scan covers the first-party `src/` trees (`crates/*/src` and the
//! facade's `src/`); `vendor/`, `tests/`, `benches/` and `examples/`
//! are out of scope. See [`rules`] for the rule catalogue and
//! [`baseline`] for the ratchet semantics.

mod baseline;
mod rules;
mod scrub;

use rules::Violation;
use std::path::{Path, PathBuf};

const BASELINE_FILE: &str = "lint-baseline.json";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        [] => Mode::Report,
        ["--check"] => Mode::Check,
        ["--update-baseline"] => Mode::Update,
        _ => {
            eprintln!("usage: dts-lint [--check | --update-baseline]");
            return 2;
        }
    };

    // crates/lint/src -> repo root, so the binary works from any cwd.
    let root = match Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
    {
        Some(root) => root.to_path_buf(),
        None => {
            eprintln!("dts-lint: cannot locate the repository root");
            return 2;
        }
    };

    let mut violations = Vec::new();
    for file in source_files(&root) {
        let source = match std::fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("dts-lint: cannot read {}: {e}", file.display());
                return 2;
            }
        };
        let rel = relative(&root, &file);
        let scrubbed = scrub::scrub(&source);
        violations.extend(rules::check_file(
            &rel,
            &scrubbed,
            deterministic_path(&rel),
            decision_path(&rel),
        ));
    }
    violations.sort();

    match mode {
        Mode::Report => {
            for v in &violations {
                println!("{}", describe(v));
            }
            println!(
                "dts-lint: {} violation(s) across {} file(s)",
                violations.len(),
                baseline::tally(&violations).len()
            );
            0
        }
        Mode::Update => {
            let text = baseline::render(&baseline::tally(&violations));
            if let Err(e) = std::fs::write(root.join(BASELINE_FILE), text) {
                eprintln!("dts-lint: cannot write {BASELINE_FILE}: {e}");
                return 2;
            }
            println!(
                "dts-lint: wrote {BASELINE_FILE} with {} violation(s)",
                violations.len()
            );
            0
        }
        Mode::Check => check(&root, &violations),
    }
}

enum Mode {
    Report,
    Check,
    Update,
}

fn check(root: &Path, violations: &[Violation]) -> i32 {
    let text = match std::fs::read_to_string(root.join(BASELINE_FILE)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dts-lint: cannot read {BASELINE_FILE}: {e}");
            eprintln!("dts-lint: run `cargo run -p dts-lint -- --update-baseline` to create it");
            return 1;
        }
    };
    let base = match baseline::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("dts-lint: {e}");
            return 1;
        }
    };
    let current = baseline::tally(violations);

    let mut failed = false;
    // New debt: any (file, rule) bucket that grew.
    for (file, rules) in &current {
        for (rule, &count) in rules {
            let allowed = base
                .get(file)
                .and_then(|r| r.get(rule))
                .copied()
                .unwrap_or(0);
            if count > allowed {
                failed = true;
                eprintln!(
                    "dts-lint: {file}: {rule} has {count} violation(s), baseline allows {allowed}:"
                );
                for v in violations
                    .iter()
                    .filter(|v| &v.file == file && v.rule == rule)
                {
                    eprintln!("  {}", describe(v));
                }
            }
        }
    }
    // The ratchet: a bucket that shrank means the baseline overstates the
    // debt; it must be regenerated (and committed) with the fix.
    for (file, rules) in &base {
        for (rule, &allowed) in rules {
            let count = current
                .get(file)
                .and_then(|r| r.get(rule))
                .copied()
                .unwrap_or(0);
            if count < allowed {
                failed = true;
                eprintln!(
                    "dts-lint: {file}: {rule} is down to {count} violation(s) but the baseline \
                     still allows {allowed}; run `cargo run -p dts-lint -- --update-baseline` \
                     to ratchet the baseline down and commit it"
                );
            }
        }
    }

    if failed {
        1
    } else {
        println!(
            "dts-lint: clean ({} known violation(s) across {} file(s) in the baseline)",
            violations.len(),
            current.len()
        );
        0
    }
}

fn describe(v: &Violation) -> String {
    format!("{}:{} [{}] {}", v.file, v.line, v.rule, v.message)
}

/// First-party Rust sources: every `.rs` under a `src/` directory,
/// excluding `vendor/`, `target/` and VCS metadata. Integration tests,
/// benches and examples live outside `src/` and are therefore out of
/// scope by construction.
fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(
                    name.as_ref(),
                    "vendor" | "target" | ".git" | "tests" | "benches" | "examples"
                ) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") && {
                let rel = relative(root, &path);
                rel.starts_with("src/") || rel.contains("/src/")
            } {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The deterministic paths guarded by L004: the event-driven executors
/// and the decision engines, which the equivalence suites replay
/// byte-for-byte.
fn deterministic_path(rel: &str) -> bool {
    let file = rel.rsplit('/').next().unwrap_or(rel);
    file.contains("simulate") || file.contains("engine")
}

/// The heuristic decision paths guarded by L005: ordering and placement
/// decisions must consume the durations the cost-model layer materialized
/// into the instance, not re-derive them from raw task fields.
fn decision_path(rel: &str) -> bool {
    rel.starts_with("crates/heuristics/src/")
}
