//! The ratcheted baseline: known violations, committed as
//! `lint-baseline.json` at the repo root.
//!
//! `--check` compares the current scan against the baseline per
//! `(file, rule)` bucket: a bucket that *grew* is a failure (new debt),
//! and a bucket that *shrank* is also a failure until the baseline is
//! regenerated — that is the ratchet: fixing a violation permanently
//! lowers the ceiling, because the shrunken baseline gets committed with
//! the fix.
//!
//! The format is a tiny hand-rolled JSON document (this crate is
//! dependency-free on purpose): `{"version": 1, "violations": {<file>:
//! {<rule>: <count>}}}`, keys sorted, so diffs stay readable.

use crate::rules::Violation;
use std::collections::BTreeMap;

/// Violation counts per file, per rule.
pub type Counts = BTreeMap<String, BTreeMap<String, usize>>;

/// Groups a scan's findings into baseline buckets.
pub fn tally(violations: &[Violation]) -> Counts {
    let mut counts = Counts::new();
    for v in violations {
        *counts
            .entry(v.file.clone())
            .or_default()
            .entry(v.rule.to_string())
            .or_default() += 1;
    }
    counts
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the baseline document (sorted, diff-friendly).
pub fn render(counts: &Counts) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"violations\": {");
    let mut first_file = true;
    for (file, rules) in counts {
        if rules.is_empty() {
            continue;
        }
        if !first_file {
            out.push(',');
        }
        first_file = false;
        out.push_str(&format!("\n    \"{}\": {{", escape(file)));
        let mut first_rule = true;
        for (rule, count) in rules {
            if !first_rule {
                out.push(',');
            }
            first_rule = false;
            out.push_str(&format!("\n      \"{}\": {}", escape(rule), count));
        }
        out.push_str("\n    }");
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Parses a baseline document; rejects anything it would not itself
/// render (modulo whitespace), which keeps the parser small and honest.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    p.eat(b'{')?;
    let mut counts = Counts::new();
    let mut version_seen = false;
    loop {
        p.ws();
        if p.try_eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.ws();
        p.eat(b':')?;
        p.ws();
        match key.as_str() {
            "version" => {
                let v = p.number()?;
                if v != 1 {
                    return Err(format!("unsupported baseline version {v}"));
                }
                version_seen = true;
            }
            "violations" => {
                p.eat(b'{')?;
                loop {
                    p.ws();
                    if p.try_eat(b'}') {
                        break;
                    }
                    let file = p.string()?;
                    p.ws();
                    p.eat(b':')?;
                    p.ws();
                    p.eat(b'{')?;
                    let rules = counts.entry(file).or_default();
                    loop {
                        p.ws();
                        if p.try_eat(b'}') {
                            break;
                        }
                        let rule = p.string()?;
                        p.ws();
                        p.eat(b':')?;
                        p.ws();
                        let n = p.number()?;
                        rules.insert(rule, n);
                        p.ws();
                        if !p.try_eat(b',') {
                            p.ws();
                            p.eat(b'}')?;
                            break;
                        }
                    }
                    p.ws();
                    if !p.try_eat(b',') {
                        p.ws();
                        p.eat(b'}')?;
                        break;
                    }
                }
            }
            other => return Err(format!("unknown baseline key {other:?}")),
        }
        p.ws();
        if !p.try_eat(b',') {
            p.ws();
            p.eat(b'}')?;
            break;
        }
    }
    if !version_seen {
        return Err("baseline is missing the \"version\" key".into());
    }
    Ok(counts)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }
    fn try_eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }
    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.try_eat(c) {
            Ok(())
        } else {
            Err(format!(
                "malformed baseline: expected {:?} at byte {}",
                c as char, self.i
            ))
        }
    }
    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("malformed baseline: unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        _ => return Err("malformed baseline: unsupported escape".into()),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    out.push(c as char);
                    self.i += 1;
                }
            }
        }
    }
    fn number(&mut self) -> Result<usize, String> {
        let start = self.i;
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!(
                "malformed baseline: expected a number at byte {start}"
            ));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "malformed baseline: bad number".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trips() {
        let mut counts = Counts::new();
        counts
            .entry("crates/a/src/lib.rs".into())
            .or_default()
            .insert("L001".into(), 3);
        counts
            .entry("crates/a/src/lib.rs".into())
            .or_default()
            .insert("L002".into(), 1);
        counts
            .entry("src/lib.rs".into())
            .or_default()
            .insert("L004".into(), 2);
        let text = render(&counts);
        assert_eq!(parse(&text).map_err(|e| e.to_string()), Ok(counts));
    }

    #[test]
    fn empty_baseline_round_trips() {
        let counts = Counts::new();
        assert_eq!(parse(&render(&counts)), Ok(counts));
    }

    #[test]
    fn malformed_baselines_are_rejected_with_a_message() {
        assert!(parse("").is_err());
        assert!(parse("{\"version\": 2, \"violations\": {}}").is_err());
        assert!(parse("{\"violations\": {}}").is_err(), "missing version");
        assert!(parse("{\"version\": 1, \"violations\": {\"f\": {\"L001\": }}}").is_err());
    }
}
