//! A lightweight Rust scrubber: separates source text into per-line
//! *code* (with string/char-literal contents blanked and comments
//! removed) and per-line *comment* text.
//!
//! The rules in [`crate::rules`] only ever match against the scrubbed
//! code, so `"a string mentioning panic!()"` or `// an old unwrap()`
//! can never produce a false positive, and waiver comments
//! (`// lint: allow(L00x) reason`) are read back from the comment side.
//!
//! Handled: line comments (incl. `///` and `//!` doc comments), nested
//! block comments, string literals with escapes, raw strings
//! `r#"…"#` (any number of hashes, also `br#"…"#`), byte strings,
//! char and byte-char literals, and lifetimes (`'a` is code, `'a'` is a
//! blanked literal).

/// Per-line code and comment views of one source file.
pub struct Scrubbed {
    /// Source code with comments stripped and literal contents blanked;
    /// quotes are kept so `.expect("…")` scrubs to `.expect("")`.
    pub code: Vec<String>,
    /// Comment text (line and block) that appeared on each line.
    pub comments: Vec<String>,
}

enum Mode {
    Code,
    LineComment,
    BlockComment(usize),
    Str,
    RawStr(usize),
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scrubs one file. Total over arbitrary input: unterminated literals or
/// comments simply swallow the rest of the file, which is the safe
/// direction (no code is invented).
pub fn scrub(source: &str) -> Scrubbed {
    let chars: Vec<char> = source.chars().collect();
    let n_lines = source.split('\n').count();
    let mut code = vec![String::new(); n_lines];
    let mut comments = vec![String::new(); n_lines];
    let mut line = 0usize;
    let mut mode = Mode::Code;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            line += 1;
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code[line].push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if c == '\'' {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let after = chars.get(i + 2).copied();
                    if next.is_some_and(is_ident) && next != Some('\\') && after != Some('\'') {
                        code[line].push('\'');
                        i += 1; // the ident chars flow through as code
                    } else {
                        code[line].push_str("''");
                        i += 1; // past the opening quote
                        while i < chars.len() && chars[i] != '\'' {
                            if chars[i] == '\n' {
                                line += 1;
                            }
                            i += if chars[i] == '\\' { 2 } else { 1 };
                        }
                        i += 1; // past the closing quote
                    }
                } else if is_ident(c) && !c.is_ascii_digit() {
                    let start = i;
                    while i < chars.len() && is_ident(chars[i]) {
                        i += 1;
                    }
                    let ident: String = chars[start..i].iter().collect();
                    code[line].push_str(&ident);
                    if ident == "r" || ident == "br" {
                        // Possible raw string: r"…", r#"…"#, br##"…"##.
                        let mut j = i;
                        while chars.get(j) == Some(&'#') {
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            let hashes = j - i;
                            code[line].push('"');
                            mode = Mode::RawStr(hashes);
                            i = j + 1;
                        }
                    }
                } else {
                    code[line].push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                comments[line].push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comments[line].push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // An escaped newline (line continuation) still ends a line.
                    if chars.get(i + 1) == Some(&'\n') {
                        line += 1;
                    }
                    i += 2;
                } else if c == '"' {
                    code[line].push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
                    code[line].push('"');
                    mode = Mode::Code;
                    i += hashes + 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    Scrubbed { code, comments }
}

#[cfg(test)]
mod tests {
    use super::scrub;

    #[test]
    fn strings_and_comments_never_reach_the_code_side() {
        let s = scrub(concat!(
            "let x = \"panic!(.unwrap())\"; // old .expect() call\n",
            "/* unwrap() in /* nested */ block */ let y = 1;\n",
        ));
        assert_eq!(s.code[0], "let x = \"\"; ");
        assert!(s.comments[0].contains(".expect()"));
        assert_eq!(s.code[1], " let y = 1;");
        assert!(s.comments[1].contains("nested"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let s =
            scrub("let r = r#\"has \"quotes\" and unwrap()\"#;\nlet c = '\\'';\nlet q = 'u';\n");
        assert_eq!(s.code[0], "let r = r\"\";");
        assert_eq!(s.code[1], "let c = '';");
        assert_eq!(s.code[2], "let q = '';");
    }

    #[test]
    fn lifetimes_stay_in_code() {
        let s = scrub("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert_eq!(s.code[0], "fn f<'a>(x: &'a str) -> &'a str { x }");
    }

    #[test]
    fn multiline_strings_track_line_numbers() {
        let s = scrub("let x = \"line one\nline two\"; let y = 2;\n// done\n");
        assert_eq!(s.code[0], "let x = \"");
        assert_eq!(s.code[1], "\"; let y = 2;");
        assert_eq!(s.comments[2], " done");
    }
}
