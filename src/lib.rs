//! # transfer-sched
//!
//! A library for deciding the **order of data transfers** between two memory
//! nodes so that communication is overlapped with computation and the
//! makespan of a set of independent tasks is minimized. This is a
//! reproduction of *Performance Models for Data Transfers: A Case Study with
//! Molecular Chemistry Kernels* (Kumar, Eyraud-Dubois & Krishnamoorthy,
//! ICPP 2019).
//!
//! The crate is a facade re-exporting the workspace members:
//!
//! * [`core`] — task/instance/schedule model, feasibility checking, the
//!   memory-constrained executor;
//! * [`flowshop`] — Johnson's algorithm (the `OMIM` lower bound),
//!   Gilmore–Gomory sequencing, exact solvers, the 3-Partition reduction;
//! * [`heuristics`] — the static, dynamic and corrected ordering heuristics
//!   of the paper;
//! * [`milp`] — the MILP formulation and the iterative `lp.k` heuristic;
//! * [`tensor`] — dense tensor-tile kernels (transpose/contraction) used by
//!   the workload generators;
//! * [`ga`] — a Global-Arrays-like PGAS memory-node substrate with a
//!   transfer-cost model;
//! * [`chem`] — Hartree–Fock and CCSD trace generators and workload
//!   characterization;
//! * [`analysis`] — experiment harness, capacity sweeps, statistics and
//!   report generation.
//!
//! ## Quickstart
//!
//! ```
//! use transfer_sched::prelude::*;
//!
//! // Four independent tasks (Table 3 of the paper), memory capacity 6.
//! let instance = InstanceBuilder::new()
//!     .capacity(MemSize::from_bytes(6))
//!     .task_units("A", 3.0, 2.0, 3)
//!     .task_units("B", 1.0, 3.0, 1)
//!     .task_units("C", 4.0, 4.0, 4)
//!     .task_units("D", 2.0, 1.0, 2)
//!     .build()
//!     .unwrap();
//!
//! // Lower bound: optimal makespan with infinite memory (Johnson's rule).
//! let omim = johnson_makespan(&instance);
//!
//! // Run every heuristic from the paper and pick the best schedule.
//! let (best, schedule) = best_heuristic(&instance).unwrap();
//! let ratio = schedule.makespan(&instance).ratio(omim);
//! println!("best heuristic: {best}, ratio to optimal: {ratio:.3}");
//! assert!(ratio >= 1.0);
//! ```

pub use dts_analysis as analysis;
pub use dts_chem as chem;
pub use dts_core as core;
pub use dts_flowshop as flowshop;
pub use dts_ga as ga;
pub use dts_heuristics as heuristics;
pub use dts_milp as milp;
pub use dts_tensor as tensor;

/// One-stop prelude for applications.
pub mod prelude {
    pub use dts_core::prelude::*;
    pub use dts_flowshop::johnson::{johnson_makespan, johnson_order, johnson_schedule};
    pub use dts_heuristics::{best_heuristic, run_heuristic, Heuristic};
}
